"""The registered benchmark scenarios.

Each scenario exercises one subsystem along the paper's critical path,
sized against :class:`~repro.bench.harness.BenchContext`'s shared
fixtures (512-sample synthetic JAG dataset, 8x8 images, batch 32):

- ``reader_materialize`` — plan + materialize one ArrayReader epoch
  (data-plane throughput with no store or pipeline in the way);
- ``store_fetch`` — assemble shuffled mini-batches from a 4-rank
  :class:`~repro.datastore.store.DistributedDataStore` (owner lookup +
  inter-rank exchange accounting);
- ``prefetch_pipeline`` — consume one epoch through
  :func:`~repro.datastore.pipeline.build_pipeline` at depths 0/2/4
  (pipeline overhead and background-thread overlap);
- ``train_step_serial`` (+ ``_thread``/``_process``, full mode) — one
  population train step under each execution backend, the quantity the
  paper's Figure 9/10 scaling curves are built from;
- ``ltfb_round`` — one complete LTFB round (train + tournament +
  exchange + eval) through :class:`~repro.core.ltfb.LtfbDriver`, under
  the topology selected by ``--topology``;
- ``ltfb_round_async`` — the same round barrier-full vs barrier-free
  (``async_pairwise``) on the parallel backends, the win from running
  tournaments in trainer completion order;
- ``checkpoint`` — trainer checkpoint save and restore round-trip;
- ``ingest_channel`` — stream the whole dataset through the ingestion
  beat (publish to watermark, age out, drain, admit into a universe and
  an evicting store) under each retention policy;
- ``serve_closed_loop`` / ``serve_open_loop`` — request latency through
  the full serving stack (admission, micro-batching, fixed-shape
  forward) under closed-loop concurrency and stepped open-loop offered
  QPS (cache disabled so every request pays the forward path);
- ``telemetry_overhead`` — a fixed synthetic event stream through the
  :class:`~repro.telemetry.TelemetryHub`: bare hub (telemetry off) vs
  the live observability plane (:class:`~repro.telemetry.LiveAggregator`
  alone, then + :class:`~repro.telemetry.FlightRecorder`), guarding the
  "live plane costs nothing when off" contract;
- ``eval_divergence`` — the quality probe's critical path: the fixed
  streaming-estimator protocol on a 512-row reference, and one full
  per-round probe pass (generator forward + estimator + EVAL emit) over
  a k=2 population.

Metrics are wall-clock seconds (direction ``lower``) except the reader's
``samples_per_s`` throughput (direction ``higher``), which keeps the
regression gate's direction handling honest.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.bench.harness import BenchContext, metric, scenario

__all__: list[str] = []


@scenario(
    "reader_materialize",
    "plan + materialize one ArrayReader epoch (batch 32, 512 samples)",
)
def _reader_materialize(ctx: BenchContext) -> dict:
    from repro.datastore.reader import ArrayReader

    reader = ArrayReader(
        ctx.dataset.fields, ctx.train_ids, ctx.rng("reader-materialize")
    )
    batch = ctx.BATCH_SIZE
    steps = reader.steps_per_epoch(batch)

    def trial() -> None:
        plan = reader.plan_epoch(batch)
        for bp in plan:
            reader.materialize(bp)

    times = ctx.repeat(trial)
    delivered = steps * batch
    return {
        "epoch_s": metric(times, "s"),
        "samples_per_s": metric(
            [delivered / t for t in times], "samples/s", direction="higher"
        ),
    }


@scenario(
    "store_fetch",
    "assemble shuffled mini-batches from a 4-rank distributed data store",
)
def _store_fetch(ctx: BenchContext) -> dict:
    from repro.datastore.store import DistributedDataStore

    fields = ctx.dataset.fields
    n = ctx.dataset.n_samples
    store = DistributedDataStore(num_ranks=4, bytes_per_rank=10**8)
    for sid in range(n):
        store.cache_sample(sid % 4, sid, {k: v[sid] for k, v in fields.items()})
    rng = ctx.rng("store-fetch")
    batch = ctx.BATCH_SIZE
    batches = [
        rng.permutation(n)[:batch].astype(np.int64)
        for _ in range(n // batch)
    ]

    def trial() -> None:
        for ids in batches:
            store.fetch_batch(ids)

    return {"epoch_fetch_s": metric(ctx.repeat(trial), "s")}


@scenario(
    "prefetch_pipeline",
    "consume one epoch through the batch pipeline at prefetch depths 0/2/4",
)
def _prefetch_pipeline(ctx: BenchContext) -> dict:
    from repro.datastore.pipeline import build_pipeline
    from repro.datastore.reader import ArrayReader

    batch = ctx.BATCH_SIZE
    out: dict[str, dict] = {}
    for depth in (0, 2, 4):
        # A fresh reader per trial keeps every trial's work identical
        # (same epoch index, same planning state) across depths.
        seed_rng = ctx.rng(f"prefetch-{depth}")
        seeds = iter(seed_rng.integers(0, 2**31, size=1024).tolist())

        def trial(depth: int = depth) -> None:
            reader = ArrayReader(
                ctx.dataset.fields,
                ctx.train_ids,
                np.random.default_rng(next(seeds)),
            )
            pipeline = build_pipeline(reader, batch, prefetch_depth=depth)
            try:
                for _ in range(reader.steps_per_epoch(batch)):
                    pipeline.next_batch()
            finally:
                pipeline.close()

        out[f"depth{depth}_epoch_s"] = metric(ctx.repeat(trial), "s")
    return out


def _train_step_metrics(ctx: BenchContext, backend_name: str) -> dict:
    from repro.exec import resolve_backend
    from repro.telemetry import TelemetryHub

    trainers = ctx.population(f"train-step-{backend_name}")
    backend = resolve_backend(
        backend_name, max_workers=None if backend_name == "serial" else 2
    )
    backend.bind(trainers, TelemetryHub())
    counter = iter(range(10**6))
    n_steps = 2

    def trial() -> None:
        backend.train_round(next(counter), n_steps)

    try:
        times = ctx.repeat(trial)
    finally:
        backend.release()
    # Per population-step time: how long the whole population takes to
    # advance one training step under this backend.
    return {"step_s": metric([t / n_steps for t in times], "s")}


@scenario("train_step_serial", "population train step, serial backend")
def _train_step_serial(ctx: BenchContext) -> dict:
    return _train_step_metrics(ctx, "serial")


@scenario(
    "train_step_thread",
    "population train step, thread backend (2 workers)",
    modes=("full",),
)
def _train_step_thread(ctx: BenchContext) -> dict:
    return _train_step_metrics(ctx, "thread")


@scenario(
    "train_step_process",
    "population train step, process backend (2 workers)",
    modes=("full",),
)
def _train_step_process(ctx: BenchContext) -> dict:
    return _train_step_metrics(ctx, "process")


@scenario(
    "ltfb_round",
    "one full LTFB round: train + tournament + exchange + eval "
    "(topology from --topology)",
)
def _ltfb_round(ctx: BenchContext) -> dict:
    from repro.core import LtfbConfig, LtfbDriver

    driver = LtfbDriver(
        ctx.population("ltfb-round"),
        ctx.rng("ltfb-pairing"),
        LtfbConfig(steps_per_round=2, rounds=1),
        eval_batch=ctx.eval_batch(64),
        topology=ctx.config.topology,
    )

    def trial() -> None:
        # Each trial extends the campaign by exactly one round; run()
        # resumes from history.rounds_completed.
        driver.config = dataclasses.replace(
            driver.config, rounds=driver.history.rounds_completed + 1
        )
        driver.run()

    return {"round_s": metric(ctx.repeat(trial), "s")}


def _ltfb_round_times(
    ctx: BenchContext, backend_name: str, topology: str
) -> list[float]:
    """Per-trial seconds for one k=4 LTFB round under ``topology``."""
    from repro.core import LtfbConfig, LtfbDriver
    from repro.exec import resolve_backend

    driver = LtfbDriver(
        ctx.population(f"ltfb-async/{backend_name}/{topology}", k=4),
        ctx.rng(f"ltfb-async-pairing/{backend_name}/{topology}"),
        LtfbConfig(steps_per_round=2, rounds=1),
        eval_batch=ctx.eval_batch(64),
        backend=resolve_backend(backend_name, max_workers=2),
        topology=topology,
    )

    def trial() -> None:
        driver.config = dataclasses.replace(
            driver.config, rounds=driver.history.rounds_completed + 1
        )
        driver.run()

    return ctx.repeat(trial)


@scenario(
    "ltfb_round_async",
    "barrier-full vs barrier-free LTFB round, k=4 on 2 workers "
    "(process backend in full mode)",
)
def _ltfb_round_async(ctx: BenchContext) -> dict:
    # Four trainers over two workers means the sync round holds the round
    # barrier across two waves of training before any tournament runs;
    # the async topology starts pairing the first wave while the second
    # is still on the pool — that overlap is the barrier-removal win.
    backends = ("thread",) if ctx.config.mode == "quick" else (
        "thread",
        "process",
    )
    out: dict[str, dict] = {}
    for backend_name in backends:
        for label, topology in (
            ("sync", "random_pairwise"),
            ("async", "async_pairwise"),
        ):
            out[f"{backend_name}_{label}_round_s"] = metric(
                _ltfb_round_times(ctx, backend_name, topology), "s"
            )
    return out


@scenario(
    "ingest_channel",
    "stream the dataset through the ingestion beat "
    "(publish/age/drain/admit) under each retention policy",
)
def _ingest_channel(ctx: BenchContext) -> dict:
    from repro.datastore.store import DistributedDataStore
    from repro.ingest.channel import IngestChannel, StreamedSample
    from repro.ingest.universe import SampleUniverse

    fields = ctx.dataset.fields
    n = ctx.dataset.n_samples
    samples = [
        StreamedSample(
            sample_id=sid,
            fields={k: v[sid] for k, v in fields.items()},
            produced_at=float(sid),  # one simulated second apart
            task_id=sid,
        )
        for sid in range(n)
    ]
    sample_nbytes = samples[0].nbytes

    def trial(retention: str) -> None:
        channel = IngestChannel(
            capacity=64,
            retention=retention,
            high_watermark=0.75,
            low_watermark=0.25,
            max_age_s=96.0,
            seed=17,
        )
        universe = SampleUniverse()
        store = DistributedDataStore(
            num_ranks=2,
            bytes_per_rank=sample_nbytes * 128,
            evicting=True,
        )
        it = iter(samples)
        clock = 0.0
        exhausted = False
        while not exhausted or channel.depth:
            while not channel.paused:  # pump to the high watermark
                s = next(it, None)
                if s is None:
                    exhausted = True
                    break
                clock = s.produced_at
                channel.publish(s)
            channel.evict_stale(clock)
            drained = channel.drain()
            universe.admit(drained)
            for s in drained:
                store.admit(s.sample_id, s.fields)
        assert universe.size > 0 and store.stats.evictions > 0

    out: dict[str, dict] = {}
    for retention in ("recency", "reservoir"):
        times = ctx.repeat(lambda retention=retention: trial(retention))
        out[f"{retention}_stream_s"] = metric(times, "s")
        if retention == "recency":
            out["samples_per_s"] = metric(
                [n / t for t in times], "samples/s", direction="higher"
            )
    return out


@scenario("checkpoint", "trainer checkpoint save and restore round-trip")
def _checkpoint(ctx: BenchContext) -> dict:
    from repro.core.checkpoint import restore_trainer, trainer_checkpoint

    trainer = ctx.population("checkpoint")[0]
    payload = trainer_checkpoint(trainer)
    save_s = ctx.repeat(lambda: trainer_checkpoint(trainer))
    restore_s = ctx.repeat(lambda: restore_trainer(trainer, payload))
    return {
        "save_s": metric(save_s, "s"),
        "restore_s": metric(restore_s, "s"),
    }


def _serve_server(ctx: BenchContext, tag: str, store_dir: str):
    """An in-process server over a freshly checkpointed 2-member ensemble.

    The response cache is off and the assembly delay short: the scenario
    measures the queue + batch + forward path, not cache hits.
    """
    from repro.core.checkpoint import CheckpointStore
    from repro.serve import ModelRegistry, ServeConfig, SurrogateServer

    trainers = ctx.population(tag)
    store = CheckpointStore(store_dir)
    store.save_population(trainers, tag, winner=trainers[0].name)
    registry = ModelRegistry(store, autoencoder=ctx.autoencoder, max_batch=16)
    registry.load(tag)
    return SurrogateServer(
        registry,
        ServeConfig(max_batch=16, max_delay_s=0.001, cache_size=0),
    )


def _latency_metrics(reports) -> dict[str, list[float]]:
    out: dict[str, list[float]] = {"p50_s": [], "p95_s": [], "p99_s": []}
    for report in reports:
        p = report.percentiles()
        out["p50_s"].append(p["p50"])
        out["p95_s"].append(p["p95"])
        out["p99_s"].append(p["p99"])
    return out


@scenario(
    "serve_closed_loop",
    "served request latency, 4 closed-loop clients through the full stack",
)
def _serve_closed_loop(ctx: BenchContext) -> dict:
    import tempfile

    from repro.serve import closed_loop

    rng = ctx.rng("serve-closed")
    with tempfile.TemporaryDirectory() as tmp:
        server = _serve_server(ctx, "serve-closed", tmp)
        n_params = server.registry.current().runtime.input_dim
        params = rng.random((128, n_params), dtype=np.float32)
        reports = []
        with server:
            for i in range(
                ctx.config.resolved_warmup + ctx.config.resolved_repeats
            ):
                report = closed_loop(
                    server, params, clients=4, requests_per_client=24
                )
                if i >= ctx.config.resolved_warmup:
                    reports.append(report)
    return {
        name: metric(samples, "s")
        for name, samples in _latency_metrics(reports).items()
    }


@scenario(
    "serve_open_loop",
    "served request latency vs stepped offered QPS (open loop)",
)
def _serve_open_loop(ctx: BenchContext) -> dict:
    import tempfile

    from repro.serve import open_loop

    rng = ctx.rng("serve-open")
    qps_steps = (100.0, 200.0, 400.0)
    out: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        server = _serve_server(ctx, "serve-open", tmp)
        n_params = server.registry.current().runtime.input_dim
        params = rng.random((128, n_params), dtype=np.float32)
        with server:
            for qps in qps_steps:
                reports = []
                for i in range(
                    ctx.config.resolved_warmup + ctx.config.resolved_repeats
                ):
                    report = open_loop(
                        server, params, qps=qps, n_requests=48
                    )
                    if i >= ctx.config.resolved_warmup:
                        reports.append(report)
                for name, samples in _latency_metrics(reports).items():
                    out[f"qps{int(qps)}_{name}"] = metric(samples, "s")
    return out


@scenario(
    "telemetry_overhead",
    "event-bus throughput: bare hub vs live plane (aggregator + recorder)",
)
def _telemetry_overhead(ctx: BenchContext) -> dict:
    from repro.telemetry import FlightRecorder, LiveAggregator, TelemetryHub

    # A realistic event mix for one synthetic "round": mostly step_end,
    # with the pipeline/ingest/serve traffic a streamed campaign carries.
    # Pre-built once so every trial times dispatch, not payload assembly.
    def round_events(r: int) -> list[tuple[str, dict]]:
        mix: list[tuple[str, dict]] = []
        for t in range(4):
            name = f"t{t}"
            for s in range(8):
                mix.append((
                    "step_end",
                    dict(
                        trainer=name, steps=1, steps_done=r * 8 + s + 1,
                        losses={"loss": 1.0 / (r + 1)}, elapsed_s=0.01,
                        backend="serial", worker=0,
                    ),
                ))
            mix.append((
                "fetch_stall",
                dict(trainer=name, stall_s=0.001, overlap_s=0.004, worker=0),
            ))
        mix.append((
            "ingest",
            dict(
                round=r, admitted=8, evicted=2, stale=1, store_evictions=0,
                depth=4, cursor=8 * (r + 1), universe_version=r,
                universe_size=512 + 8 * r, producer_lag=2,
                store_occupancy=0.5, paused=False, channel_occupancy=0.25,
            ),
        ))
        mix.append((
            "serve",
            dict(size=8, queue_depth=3, forward_s=0.002, wait_s=0.001,
                 version=1),
        ))
        mix.append((
            "round_end",
            dict(round=r, train_s=0.32, tournament_s=0.02, exchange_s=0.01),
        ))
        return mix

    rounds = 24
    stream = [ev for r in range(rounds) for ev in round_events(r)]

    def timed(subscribers) -> tuple[list[float], int]:
        def trial() -> None:
            hub = TelemetryHub()
            for cb in subscribers():
                hub.subscribe(cb)
            for event_type, payload in stream:
                hub.emit(event_type, **payload)

        return ctx.repeat(trial), len(stream)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        bare_times, n = timed(lambda: [])
        live_times, _ = timed(lambda: [LiveAggregator()])
        full_times, _ = timed(
            lambda: [
                LiveAggregator(),
                FlightRecorder(out_dir=tmp, dump_on=()),
            ]
        )
    return {
        "bare_hub_s": metric(bare_times, "s"),
        "live_aggregator_s": metric(live_times, "s"),
        "live_plus_recorder_s": metric(full_times, "s"),
        "bare_events_per_s": metric(
            [n / t for t in bare_times], "events/s", direction="higher"
        ),
        "live_events_per_s": metric(
            [n / t for t in full_times], "events/s", direction="higher"
        ),
    }


@scenario(
    "eval_divergence",
    "quality probe: streaming estimator + one per-round probe pass (k=2)",
)
def _eval_divergence(ctx: BenchContext) -> dict:
    from repro.core.ltfb import LtfbConfig, LtfbDriver
    from repro.eval import QualityProbe, scalar_divergences
    from repro.telemetry.events import TelemetryEvent

    # The estimator alone, at the probe's default reference size: 512
    # reservoir rows, the fixed 32-bin protocol.
    rng = ctx.rng("eval-divergence")
    reference = rng.normal(size=(512, 16))
    model_out = rng.normal(loc=0.25, size=(512, 16))

    def estimator_trial() -> None:
        scalar_divergences(reference, model_out)

    estimator_times = ctx.repeat(estimator_trial)

    # One full probe pass over a k=2 population: per-trainer generator
    # forward on the reservoir reference + estimator + EVAL emit — the
    # per-round cost a campaign pays for quality observability.
    trainers = ctx.population("eval-divergence", k=2)
    driver = LtfbDriver(
        trainers,
        ctx.rng("eval-divergence/pairing"),
        LtfbConfig(steps_per_round=1, rounds=1),
        eval_batch=ctx.eval_batch(64),
    )
    probe = QualityProbe(capacity=256, seed=0)
    probe.on_run_begin(driver)
    round_event = TelemetryEvent(
        type="round_end", time_s=0.0, sequence=0, payload={"round": 0}
    )

    def probe_trial() -> None:
        probe.on_round_end(round_event)

    probe_times = ctx.repeat(probe_trial)
    return {
        "estimator_s": metric(estimator_times, "s"),
        "probe_pass_s": metric(probe_times, "s"),
    }
