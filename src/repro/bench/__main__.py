"""Command-line interface of the benchmark harness.

::

    python -m repro.bench run [--quick|--full] [--out PATH]
                              [--scenario NAME ...] [--repeats N]
                              [--warmup N] [--seed N]
                              [--topology NAME] [--list]
    python -m repro.bench compare BASELINE CANDIDATE
                              [--threshold F] [--iqr-k F]
    python -m repro.bench report [--dir DIR]

``run`` executes the scenario suite and writes one schema-valid
``BENCH_<n>.json`` (next free index in ``--dir``, or exactly ``--out``).
``compare`` prints per-metric verdicts between two documents and exits
nonzero when any metric regressed — the CI perf gate.  ``report`` renders
the trajectory table across every committed ``BENCH_*.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.compare import (
    DEFAULT_IQR_K,
    DEFAULT_THRESHOLD,
    compare_docs,
    render_comparison,
)
from repro.bench.harness import SCENARIOS, BenchConfig, run_bench, _selected
from repro.core.topology import TOPOLOGY_NAMES
from repro.bench.report import next_bench_path, render_trajectory
from repro.bench.schema import load_bench_doc, write_bench_doc


def _cmd_run(args: argparse.Namespace) -> int:
    config = BenchConfig(
        mode="full" if args.full else "quick",
        warmup=args.warmup,
        repeats=args.repeats,
        seed=args.seed,
        topology=args.topology,
    )
    if args.list:
        for sc in _selected(config, args.scenario or None):
            print(f"{sc.name}: {sc.description} (modes: {', '.join(sc.modes)})")
        return 0
    out = Path(args.out) if args.out else next_bench_path(args.dir)
    print(
        f"running {config.mode} benchmarks "
        f"(warmup={config.resolved_warmup}, repeats={config.resolved_repeats}, "
        f"seed={config.seed}) ..."
    )
    doc = run_bench(config, only=args.scenario or None, progress=print)
    write_bench_doc(doc, out)
    print(f"wrote {out} ({len(doc['results'])} metric(s))")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_bench_doc(args.baseline)
    candidate = load_bench_doc(args.candidate)
    comparison = compare_docs(
        baseline, candidate, threshold=args.threshold, iqr_k=args.iqr_k
    )
    print(f"== bench compare: {args.baseline} -> {args.candidate} ==")
    print(render_comparison(comparison))
    return 1 if comparison["regressions"] else 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(render_trajectory(args.dir))
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="benchmark harness: run scenarios, gate regressions, "
        "render the perf trajectory",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run the scenario suite, write BENCH_<n>.json")
    mode = run_p.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="CI smoke mode (default)"
    )
    mode.add_argument(
        "--full", action="store_true", help="baseline mode: all scenarios, more trials"
    )
    run_p.add_argument(
        "--scenario",
        action="append",
        choices=None,
        metavar="NAME",
        help="run only the named scenario (repeatable; overrides mode gating)",
    )
    run_p.add_argument("--out", help="output path (default: next free BENCH_<n>.json)")
    run_p.add_argument(
        "--dir", default=".", help="directory for auto-numbered output (default: .)"
    )
    run_p.add_argument("--warmup", type=int, help="override warmup trials")
    run_p.add_argument("--repeats", type=int, help="override timed trials")
    run_p.add_argument("--seed", type=int, default=2024, help="workload RNG seed")
    run_p.add_argument(
        "--topology",
        default="random_pairwise",
        choices=TOPOLOGY_NAMES,
        help="population topology for the ltfb_round scenario "
        "(default: random_pairwise)",
    )
    run_p.add_argument(
        "--list", action="store_true", help="list selected scenarios and exit"
    )
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser(
        "compare", help="gate a candidate document against a baseline"
    )
    cmp_p.add_argument("baseline")
    cmp_p.add_argument("candidate")
    cmp_p.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"relative worsening tolerated (default {DEFAULT_THRESHOLD})",
    )
    cmp_p.add_argument(
        "--iqr-k",
        type=float,
        default=DEFAULT_IQR_K,
        help=f"baseline-IQR multiples tolerated (default {DEFAULT_IQR_K})",
    )
    cmp_p.set_defaults(fn=_cmd_compare)

    rep_p = sub.add_parser(
        "report", help="trajectory table across committed BENCH_*.json"
    )
    rep_p.add_argument(
        "--dir", default=".", help="directory holding BENCH_*.json (default: .)"
    )
    rep_p.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
