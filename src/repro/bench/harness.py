"""The benchmark harness: scenario registry, trial loop, document builder.

Machinery only — the actual workloads live in
:mod:`repro.bench.scenarios`.  A *scenario* is a named function that
exercises one subsystem (reader, store, pipeline, backend, driver,
checkpoint) and returns one or more *metrics*, each a list of repeated
trial samples; the harness wraps every scenario in the same
warmup-then-measure protocol, folds samples through
:func:`~repro.bench.stats.summarize_samples`, stamps the
:func:`~repro.bench.fingerprint.machine_fingerprint`, and emits one
schema-valid document (:mod:`repro.bench.schema`).

Two modes trade fidelity for wall clock: ``quick`` (CI smoke: 1 warmup,
3 trials, the cheap scenario subset) and ``full`` (committed baselines:
2 warmups, 7 trials, every scenario including the parallel backends).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.bench.fingerprint import machine_fingerprint
from repro.bench.schema import SCHEMA_NAME, SCHEMA_VERSION, validate_bench_doc
from repro.bench.stats import summarize_samples

__all__ = [
    "MODES",
    "BenchConfig",
    "BenchContext",
    "Scenario",
    "SCENARIOS",
    "scenario",
    "metric",
    "run_bench",
]

MODES = ("quick", "full")

#: (warmup, repeats) per mode, overridable per run via BenchConfig.
_MODE_DEFAULTS = {"quick": (1, 3), "full": (2, 7)}


@dataclass(frozen=True)
class BenchConfig:
    """One benchmark run's knobs (mode, trial counts, seed, topology)."""

    mode: str = "quick"
    warmup: int | None = None  # None: the mode default
    repeats: int | None = None  # None: the mode default
    seed: int = 2024
    #: Population topology the driver-level scenarios (``ltfb_round``)
    #: train under; barrier-free topologies are exercised separately by
    #: ``ltfb_round_async``.
    topology: str = "random_pairwise"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.warmup is not None and self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.repeats is not None and self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        from repro.core.topology import TOPOLOGY_NAMES

        if self.topology not in TOPOLOGY_NAMES:
            raise ValueError(
                f"topology must be one of {TOPOLOGY_NAMES}, "
                f"got {self.topology!r}"
            )

    @property
    def resolved_warmup(self) -> int:
        return self.warmup if self.warmup is not None else _MODE_DEFAULTS[self.mode][0]

    @property
    def resolved_repeats(self) -> int:
        return (
            self.repeats if self.repeats is not None else _MODE_DEFAULTS[self.mode][1]
        )


class BenchContext:
    """Shared fixtures scenarios draw from, built lazily and memoized.

    The expensive artifacts — the synthetic JAG dataset and the
    pre-trained autoencoder — are built once per run, mirroring how the
    test suite session-scopes them; populations are built fresh per
    scenario (under distinct RNG scopes) so scenarios stay independent.
    """

    #: Dataset/model scale of every scenario workload: big enough that a
    #: trial measures real work, small enough for CI smoke runs.
    N_SAMPLES = 512
    BATCH_SIZE = 32

    def __init__(self, config: BenchConfig) -> None:
        from repro.utils.rng import RngFactory

        self.config = config
        self._rngs = RngFactory(config.seed)
        self._dataset = None
        self._spec = None
        self._autoencoder = None

    @property
    def dataset(self):
        if self._dataset is None:
            from repro.jag import JagDatasetConfig, generate_dataset, small_schema

            self._dataset = generate_dataset(
                JagDatasetConfig(
                    n_samples=self.N_SAMPLES,
                    schema=small_schema(8),
                    seed=self.config.seed,
                )
            )
        return self._dataset

    @property
    def spec(self):
        if self._spec is None:
            from repro.core import EnsembleSpec, TrainerConfig
            from repro.models import small_config

            self._spec = EnsembleSpec(
                k=2,
                surrogate=small_config(
                    self.dataset.schema, batch_size=self.BATCH_SIZE
                ),
                trainer=TrainerConfig(batch_size=self.BATCH_SIZE),
                ae_epochs=2,
                ae_max_samples=256,
            )
        return self._spec

    @property
    def train_ids(self) -> np.ndarray:
        return np.arange(self.dataset.n_samples)

    @property
    def autoencoder(self):
        if self._autoencoder is None:
            from repro.core import pretrain_autoencoder

            self._autoencoder = pretrain_autoencoder(
                self.dataset, self.train_ids, self._rngs.child("bench-ae"), self.spec
            )
        return self._autoencoder

    def population(self, tag: str, k: int = 2):
        """A fresh k-trainer population under its own RNG scope."""
        import dataclasses

        from repro.core import build_population

        spec = dataclasses.replace(self.spec, k=k)
        return build_population(
            self.dataset,
            self.train_ids,
            self._rngs.child(f"bench/{tag}"),
            spec,
            self.autoencoder,
        )

    def eval_batch(self, n: int = 64) -> dict[str, np.ndarray]:
        return {k: v[:n] for k, v in self.dataset.fields.items()}

    def rng(self, tag: str) -> np.random.Generator:
        return self._rngs.generator(f"bench/{tag}")

    def repeat(self, fn: Callable[[], object]) -> list[float]:
        """The trial protocol: run ``fn`` warmup times untimed, then
        ``repeats`` times wall-timed.  Returns per-trial seconds."""
        for _ in range(self.config.resolved_warmup):
            fn()
        samples: list[float] = []
        for _ in range(self.config.resolved_repeats):
            t0 = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - t0)
        return samples


def metric(
    samples: Sequence[float], unit: str, direction: str = "lower"
) -> dict:
    """Package one metric's trial samples for the document builder."""
    if direction not in ("lower", "higher"):
        raise ValueError(f"direction must be 'lower' or 'higher', got {direction!r}")
    return {
        "unit": unit,
        "direction": direction,
        "samples": [float(s) for s in samples],
    }


@dataclass(frozen=True)
class Scenario:
    """One registered workload: metadata plus the measurement function."""

    name: str
    description: str
    modes: tuple[str, ...]
    fn: Callable[[BenchContext], Mapping[str, dict]]


SCENARIOS: dict[str, Scenario] = {}


def scenario(name: str, description: str, modes: Iterable[str] = MODES):
    """Register a scenario function: ``fn(ctx) -> {metric: metric(...)}``."""

    modes = tuple(modes)
    if not modes or any(m not in MODES for m in modes):
        raise ValueError(f"modes must be drawn from {MODES}, got {modes}")

    def register(fn):
        if name in SCENARIOS:
            raise ValueError(f"duplicate scenario {name!r}")
        SCENARIOS[name] = Scenario(name, description, modes, fn)
        return fn

    return register


def _selected(config: BenchConfig, only: Sequence[str] | None) -> list[Scenario]:
    import repro.bench.scenarios  # noqa: F401  (populates SCENARIOS)

    if only:
        from fnmatch import fnmatchcase

        # Each entry is an exact name or an fnmatch glob (serve_*); a
        # pattern that matches nothing is an error either way, so typos
        # fail loudly instead of silently benchmarking nothing.
        unknown = sorted(
            pattern
            for pattern in set(only)
            if not any(fnmatchcase(n, pattern) for n in SCENARIOS)
        )
        if unknown:
            raise ValueError(
                f"unknown scenario(s) {unknown}; known: {sorted(SCENARIOS)}"
            )
        names = [
            n
            for n in SCENARIOS
            if any(fnmatchcase(n, pattern) for pattern in only)
        ]
    else:
        names = [n for n in SCENARIOS if config.mode in SCENARIOS[n].modes]
    return [SCENARIOS[n] for n in names]


def run_bench(
    config: BenchConfig,
    only: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the selected scenarios and build one validated document.

    ``only`` restricts to explicitly named scenarios (ignoring their mode
    gating — naming a full-only scenario runs it even in quick mode);
    ``progress`` receives one line per scenario as it completes.
    """
    ctx = BenchContext(config)
    say = progress or (lambda _line: None)
    results: list[dict] = []
    for sc in _selected(config, only):
        t0 = time.perf_counter()
        metrics = sc.fn(ctx)
        if not metrics:
            raise ValueError(f"scenario {sc.name!r} produced no metrics")
        for metric_name in sorted(metrics):
            m = metrics[metric_name]
            results.append(
                {
                    "scenario": sc.name,
                    "metric": metric_name,
                    "unit": m["unit"],
                    "direction": m["direction"],
                    "samples": m["samples"],
                    **summarize_samples(m["samples"]),
                }
            )
        say(
            f"  {sc.name}: {len(metrics)} metric(s) in "
            f"{time.perf_counter() - t0:.1f}s"
        )
    doc = {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "mode": config.mode,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "config": {
            "warmup": config.resolved_warmup,
            "repeats": config.resolved_repeats,
            "seed": config.seed,
            "topology": config.topology,
        },
        "results": results,
    }
    return validate_bench_doc(doc)
