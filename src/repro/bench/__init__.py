"""Benchmark harness: perf scenarios, regression gating, trajectory.

The paper's contribution is performance engineering, so this repo treats
its own wall-clock behaviour as a tested artifact: ``python -m
repro.bench run`` executes a registry of subsystem scenarios (reader
materialization, store fetch, prefetch pipeline, per-backend train step,
LTFB round, checkpoint round-trip) under a warmup-then-measure protocol,
summarizes each metric with noise-robust statistics (median/IQR/CV), and
writes a versioned, schema-validated ``BENCH_<n>.json`` stamped with a
machine fingerprint.  ``compare`` turns two documents into per-metric
verdicts — a regression is a median worsening beyond
``max(threshold * baseline, k * baseline IQR)`` — and ``report`` renders
the repo's committed trajectory.

See :mod:`repro.bench.harness` for the registry/protocol,
:mod:`repro.bench.scenarios` for the workloads,
:mod:`repro.bench.schema` for the document contract, and
:mod:`repro.telemetry.resources` for the resource-telemetry counterpart
(peak RSS / CPU series recorded alongside perf numbers).
"""

from repro.bench.compare import (
    DEFAULT_IQR_K,
    DEFAULT_THRESHOLD,
    compare_docs,
    render_comparison,
)
from repro.bench.fingerprint import fingerprints_differ, machine_fingerprint
from repro.bench.harness import (
    MODES,
    SCENARIOS,
    BenchConfig,
    BenchContext,
    Scenario,
    metric,
    run_bench,
    scenario,
)
from repro.bench.report import (
    find_bench_files,
    next_bench_path,
    render_trajectory,
)
from repro.bench.schema import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    load_bench_doc,
    validate_bench_doc,
    write_bench_doc,
)
from repro.bench.stats import summarize_samples

__all__ = [
    "MODES",
    "SCENARIOS",
    "BenchConfig",
    "BenchContext",
    "Scenario",
    "scenario",
    "metric",
    "run_bench",
    "summarize_samples",
    "machine_fingerprint",
    "fingerprints_differ",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "validate_bench_doc",
    "load_bench_doc",
    "write_bench_doc",
    "compare_docs",
    "render_comparison",
    "DEFAULT_THRESHOLD",
    "DEFAULT_IQR_K",
    "find_bench_files",
    "next_bench_path",
    "render_trajectory",
]
