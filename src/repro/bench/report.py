"""Trajectory reporting across the repo's committed ``BENCH_*.json`` runs.

Each PR that materially moves performance commits a new ``BENCH_<n>.json``
at the repo root; this module lines them up — columns in index order,
one row per scenario/metric — so the performance history reads like the
CHANGES file does.  Values are humanized with
:mod:`repro.utils.units` (seconds via ``format_time``, bytes via
``format_bytes``, rates as ``<value>/s``).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.bench.schema import load_bench_doc
from repro.utils.units import format_bytes, format_time

__all__ = ["find_bench_files", "next_bench_path", "render_trajectory"]

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def find_bench_files(directory) -> list[tuple[int, Path]]:
    """All ``BENCH_<n>.json`` files in a directory, sorted by index."""
    found = []
    for path in Path(directory).iterdir():
        m = _BENCH_RE.match(path.name)
        if m:
            found.append((int(m.group(1)), path))
    return sorted(found)


def next_bench_path(directory) -> Path:
    """The first unused ``BENCH_<n>.json`` path in a directory."""
    taken = {idx for idx, _ in find_bench_files(directory)}
    n = 0
    while n in taken:
        n += 1
    return Path(directory) / f"BENCH_{n}.json"


def _format_value(value: float, unit: str) -> str:
    if unit == "s":
        return format_time(value)
    if unit in ("B", "bytes"):
        return format_bytes(value)
    if unit.endswith("/s"):
        return f"{value:,.0f} {unit}"
    return f"{value:.4g} {unit}"


def render_trajectory(directory) -> str:
    """One table: metrics as rows, committed benchmark runs as columns."""
    files = find_bench_files(directory)
    if not files:
        return f"no BENCH_<n>.json files under {directory}"
    docs = [(idx, load_bench_doc(path)) for idx, path in files]
    keys: list[tuple[str, str]] = []
    per_doc: list[dict[tuple[str, str], dict]] = []
    for _idx, doc in docs:
        rows = {(r["scenario"], r["metric"]): r for r in doc["results"]}
        per_doc.append(rows)
        for key in rows:
            if key not in keys:
                keys.append(key)
    headers = ["scenario/metric"] + [f"BENCH_{idx}" for idx, _ in docs]
    table: list[list[str]] = [headers]
    for key in keys:
        row = [f"{key[0]}/{key[1]}"]
        for rows in per_doc:
            r = rows.get(key)
            row.append("-" if r is None else _format_value(r["median"], r["unit"]))
        table.append(row)
    widths = [max(len(row[c]) for row in table) for c in range(len(headers))]
    out = [f"== benchmark trajectory: {len(docs)} run(s) under {directory} =="]
    for i, row in enumerate(table):
        out.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            out.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for idx, doc in docs:
        host = doc["machine"]["host"]
        out.append(
            f"BENCH_{idx}: mode={doc['mode']} "
            f"warmup={doc['config']['warmup']} repeats={doc['config']['repeats']} "
            f"host={host.get('platform', '?')} "
            f"(python {host.get('python', '?')}, numpy {host.get('numpy', '?')})"
        )
    return "\n".join(out)
