"""Batch pipelines: cursors over the plan/materialize seam.

The paper's data store hides ingestion cost by overlapping mini-batch
assembly (file reads, inter-rank exchange, stacking) with training compute
(Section III-B).  The reader refactor makes that overlap safe to
implement: all randomness lives in :meth:`~repro.datastore.reader.Reader.
plan_epoch`, so :meth:`~repro.datastore.reader.Reader.materialize` can run
arbitrarily far ahead — on another thread — without changing which batches
the trainer sees.

Two pipelines over the same interface:

- :class:`BatchPipeline` — the synchronous cursor (prefetch depth 0): each
  :meth:`~BatchPipeline.next_batch` plans lazily and materializes inline.
  The consumer's stall per batch *is* the materialize time.
- :class:`PrefetchingReader` — a bounded-depth pipeline that materializes
  up to ``depth`` batches ahead on a background thread.  Batches are
  produced in exactly the order the synchronous cursor would produce them
  (one producer, in-order queue), so store caching, eviction order, file
  statistics and delivered batches are all bit-identical to depth 0.

Both pipelines are checkpointable: :meth:`~BatchPipeline.state` captures a
plan cursor — the RNG state the in-flight epoch was planned from plus the
next undelivered step — and :meth:`~BatchPipeline.restore` replays it by
re-planning the identical epoch.  Prefetched-but-undelivered batches are
deliberately *not* part of the state: they are a pure materialization of
the plan and are rebuilt on resume.

Pipelines emit ``fetch_stall`` (per delivered batch: how long the consumer
waited vs. how long materialization took) and ``prefetch_fill`` (per
background materialization: queue occupancy) telemetry when a hub is
attached via :attr:`~BatchPipeline.telemetry`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Mapping

from repro.datastore.reader import EpochPlan, MiniBatch, Reader
from repro.telemetry.events import FETCH_STALL, PREFETCH_FILL

__all__ = ["BatchPipeline", "PrefetchingReader", "build_pipeline"]


class BatchPipeline:
    """Synchronous plan/materialize cursor over a reader (depth 0).

    Tracks the *delivered* position: ``_cursor_plan`` is the epoch plan
    containing the next undelivered batch and ``_cursor_step`` its step
    index (``== len(plan)`` when the epoch is fully delivered and the next
    call rolls over).  ``reader.epochs_completed`` advances exactly when
    an epoch's final batch is delivered — delivery semantics, shared with
    :meth:`Reader.epoch`.

    Attach a :class:`~repro.telemetry.TelemetryHub` (or any object with an
    ``emit(type, **payload)`` method) via :attr:`telemetry`; payload
    context (trainer/backend/worker) merges from :attr:`context`.
    """

    depth = 0

    def __init__(
        self, reader: Reader, batch_size: int, drop_last: bool = True
    ) -> None:
        self.reader = reader
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)
        self.telemetry = None
        self.context: Mapping[str, object] = {}
        self._consumed_any = False
        self._cursor_plan: EpochPlan = reader.plan_epoch(batch_size, drop_last)
        self._cursor_step = 0

    # -- consumption ---------------------------------------------------------

    def next_batch(self) -> MiniBatch:
        """Deliver the next planned batch (rolling epochs as needed)."""
        t0 = time.perf_counter()
        plan, bp, mb, materialize_s = self._obtain()
        stall_s = time.perf_counter() - t0
        self._consumed_any = True
        self._cursor_plan = plan
        self._cursor_step = bp.step_index + 1
        if bp.is_last:
            self.reader.epochs_completed += 1
        self._emit(
            FETCH_STALL,
            depth=self.depth,
            epoch=bp.epoch_index,
            step=bp.step_index,
            stall_s=stall_s,
            materialize_s=materialize_s,
        )
        return mb

    def _obtain(self):
        """Produce the next (plan, batch plan, batch, materialize_s)."""
        plan, step = self._cursor_plan, self._cursor_step
        if step >= len(plan):
            plan = self.reader.plan_epoch(self.batch_size, self.drop_last)
            step = 0
        bp = plan.batches[step]
        tracer = getattr(self.telemetry, "tracer", None)
        t0 = time.perf_counter()
        if tracer is not None:
            # Inline materialization: nests under whatever span the
            # consuming thread has open (the trainer's train_step), and
            # store fetches nest under it in turn.
            with tracer.span(
                "materialize", cat="data",
                epoch=bp.epoch_index, step=bp.step_index,
            ):
                mb = self.reader.materialize(bp)
        else:
            mb = self.reader.materialize(bp)
        return plan, bp, mb, time.perf_counter() - t0

    # -- checkpointing -------------------------------------------------------

    def state(self) -> dict:
        """JSON-serializable plan cursor for checkpointing.

        Captures which epoch the next undelivered batch belongs to, the
        RNG state that epoch was planned from, and the step to resume at.
        Safe to call while a prefetch thread is running: it reads only
        consumer-side cursor fields and immutable plan snapshots.
        """
        return {
            "batch_size": self.batch_size,
            "drop_last": self.drop_last,
            "prefetch_depth": self.depth,
            "epoch_index": self._cursor_plan.epoch_index,
            "epoch_rng_state": self._cursor_plan.rng_state,
            "next_step": self._cursor_step,
            "universe_version": self._cursor_plan.universe_version,
        }

    def restore(self, state: Mapping) -> None:
        """Reposition a *fresh* pipeline at a checkpointed plan cursor.

        Rewinds the reader RNG to the in-flight epoch's pre-plan state and
        re-plans it — regenerating the identical permutation and leaving
        the RNG exactly where the checkpointed run had it — then skips the
        already-delivered batches.
        """
        if self._consumed_any:
            raise RuntimeError(
                "restore() is only valid on a fresh pipeline that has not "
                "delivered any batches"
            )
        if int(state["batch_size"]) != self.batch_size or bool(
            state["drop_last"]
        ) != self.drop_last:
            raise ValueError(
                "pipeline state was captured under a different batch shape: "
                f"state has batch_size={state['batch_size']} "
                f"drop_last={state['drop_last']}, pipeline has "
                f"batch_size={self.batch_size} drop_last={self.drop_last}"
            )
        self.reader._rng.bit_generator.state = state["epoch_rng_state"]
        self.reader._epochs_planned = int(state["epoch_index"])
        universe_version = state.get("universe_version")
        if universe_version is not None:
            # Growing-universe readers must re-freeze the exact snapshot
            # the in-flight epoch was originally planned against, even if
            # the universe has grown since the checkpoint was taken.
            begin_replay = getattr(self.reader, "begin_replay", None)
            if begin_replay is None:
                raise ValueError(
                    "pipeline state pins a universe snapshot but the reader "
                    f"({type(self.reader).__name__}) cannot replay one"
                )
            begin_replay(int(universe_version))
        self._cursor_plan = self.reader.plan_epoch(self.batch_size, self.drop_last)
        self._cursor_step = int(state["next_step"])
        if not 0 <= self._cursor_step <= len(self._cursor_plan):
            raise ValueError(
                f"plan cursor step {self._cursor_step} is outside the "
                f"{len(self._cursor_plan)}-step epoch"
            )

    def close(self) -> None:
        """Release pipeline resources (no-op for the synchronous cursor)."""

    # -- telemetry -----------------------------------------------------------

    def _emit(self, event_type: str, **payload) -> None:
        hub = self.telemetry
        if hub is not None:
            hub.emit(event_type, **{**self.context, **payload})


class PrefetchingReader(BatchPipeline):
    """Bounded-depth prefetch pipeline: materialize up to ``depth`` batches
    ahead on a background thread.

    The producer thread walks the same plan sequence the synchronous
    cursor would (planning further epochs as it goes — it is the only
    thread touching the reader RNG once started) and pushes materialized
    batches through a bounded queue; the consumer pops them in order.
    Because materialization is RNG-free and produced in plan order, the
    delivered batch sequence — and every store/file side effect, in order
    — is bit-identical to the synchronous path.

    The thread starts lazily on the first :meth:`next_batch` (so a
    restored-but-unused pipeline does no work) and is joined by
    :meth:`close`.  Producer exceptions re-raise in the consumer.
    """

    _POLL_S = 0.05  # bounded waits so close()/errors stay responsive

    def __init__(
        self,
        reader: Reader,
        batch_size: int,
        depth: int = 2,
        drop_last: bool = True,
    ) -> None:
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        super().__init__(reader, batch_size, drop_last)
        self.depth = int(depth)
        self._queue: queue.Queue = queue.Queue(maxsize=self.depth)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._error: BaseException | None = None

    # -- producer ------------------------------------------------------------

    def _start_if_needed(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._produce,
                name=f"repro-prefetch-{id(self):x}",
                daemon=True,
            )
            self._thread.start()

    def _fill_track(self) -> str:
        """The producer's timeline lane: the consumer's lane plus a
        ``/prefetch`` suffix, so fills render right under the trainer
        steps they overlap."""
        ctx = self.context
        if "trainer" in ctx:
            return (
                f"{ctx.get('backend', '?')}:w{ctx.get('worker', 0)}"
                f"/{ctx['trainer']}/prefetch"
            )
        return "prefetch"

    def _produce(self) -> None:
        # Start from the consumer cursor (fresh pipeline or restored one);
        # from here on this thread owns the reader RNG and plan sequence.
        plan, step = self._cursor_plan, self._cursor_step
        try:
            while not self._stop.is_set():
                if step >= len(plan):
                    plan = self.reader.plan_epoch(self.batch_size, self.drop_last)
                    step = 0
                bp = plan.batches[step]
                tracer = getattr(self.telemetry, "tracer", None)
                t0 = time.perf_counter()
                if tracer is not None:
                    # Producer-thread span: top-level on its own lane —
                    # in a Chrome trace these visibly overlap the
                    # consumer's train_step spans on the sibling track.
                    with tracer.span(
                        "prefetch_fill", cat="data",
                        track=self._fill_track(),
                        epoch=bp.epoch_index, step=bp.step_index,
                    ):
                        mb = self.reader.materialize(bp)
                else:
                    mb = self.reader.materialize(bp)
                materialize_s = time.perf_counter() - t0
                item = (plan, bp, mb, materialize_s)
                while not self._stop.is_set():
                    try:
                        self._queue.put(item, timeout=self._POLL_S)
                        break
                    except queue.Full:
                        continue
                else:
                    return
                self._emit(
                    PREFETCH_FILL,
                    depth=self.depth,
                    fill=self._queue.qsize(),
                    epoch=bp.epoch_index,
                    step=bp.step_index,
                    materialize_s=materialize_s,
                )
                step += 1
        except BaseException as exc:  # propagate to the consumer
            self._error = exc

    # -- consumer ------------------------------------------------------------

    def _obtain(self):
        self._start_if_needed()
        while True:
            try:
                return self._queue.get(timeout=self._POLL_S)
            except queue.Empty:
                if self._error is not None:
                    raise RuntimeError(
                        "prefetch pipeline failed while materializing ahead"
                    ) from self._error
                if self._thread is not None and not self._thread.is_alive():
                    raise RuntimeError("prefetch thread exited unexpectedly")

    # -- lifecycle -----------------------------------------------------------

    @property
    def queued_batches(self) -> int:
        """Approximate number of prefetched, undelivered batches."""
        return self._queue.qsize()

    def restore(self, state: Mapping) -> None:
        if self._thread is not None:
            raise RuntimeError("restore() must happen before the first batch")
        super().restore(state)

    def close(self) -> None:
        """Stop the producer thread and drop prefetched batches.

        Dropped batches are pure materializations of the plan; the cursor
        (and hence :meth:`state`) is unaffected.
        """
        self._stop.set()
        if self._thread is not None:
            while self._thread.is_alive():
                try:  # unblock a producer waiting on a full queue
                    self._queue.get_nowait()
                except queue.Empty:
                    pass
                self._thread.join(timeout=self._POLL_S)
            self._thread = None


def build_pipeline(
    reader: Reader,
    batch_size: int,
    prefetch_depth: int = 0,
    drop_last: bool = True,
) -> BatchPipeline:
    """Build the pipeline matching ``prefetch_depth`` (0 = synchronous)."""
    if prefetch_depth < 0:
        raise ValueError(f"prefetch_depth must be >= 0, got {prefetch_depth}")
    if prefetch_depth == 0:
        return BatchPipeline(reader, batch_size, drop_last)
    return PrefetchingReader(reader, batch_size, prefetch_depth, drop_last)
