"""Multi-sample bundle files (HDF5 analog).

The JAG campaign packed its 10M training samples into 10,000 HDF5 files of
1,000 samples each, *in the order the 5-D input space was explored* — a
detail with two consequences the experiments depend on:

- random mini-batch sampling touches ~1 file per sample (the naive-reader
  pathology of Fig. 10), and
- partitioning by contiguous file ranges gives each LTFB trainer a biased
  region of parameter space (the non-IID silos of Fig. 13).

A :class:`Bundle` stores its samples column-wise (one stacked array per
field) for cache-friendly access, mirroring HDF5 dataset layout.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.cluster.filesystem import SimulatedFilesystem

__all__ = ["Bundle", "write_bundles", "bundle_paths_for"]


class Bundle:
    """Samples stored column-wise: ``fields[name][i]`` is sample i's value.

    ``sample_ids`` are the *global* dataset indices of the rows, so readers
    can map a global sample id to (bundle, row).
    """

    def __init__(self, sample_ids: np.ndarray, fields: Mapping[str, np.ndarray]) -> None:
        self.sample_ids = np.asarray(sample_ids, dtype=np.int64)
        if self.sample_ids.ndim != 1 or self.sample_ids.size == 0:
            raise ValueError("sample_ids must be a non-empty 1-D array")
        self.fields: dict[str, np.ndarray] = {}
        n = self.sample_ids.size
        for name, arr in fields.items():
            arr = np.asarray(arr)
            if arr.shape[0] != n:
                raise ValueError(
                    f"field {name!r} has {arr.shape[0]} rows, expected {n}"
                )
            self.fields[name] = arr
        if not self.fields:
            raise ValueError("bundle must have at least one field")

    def __len__(self) -> int:
        return int(self.sample_ids.size)

    @property
    def nbytes(self) -> int:
        return int(
            self.sample_ids.nbytes + sum(a.nbytes for a in self.fields.values())
        )

    def sample(self, row: int) -> dict[str, np.ndarray]:
        """Copy out one sample as ``{field: value}`` (row-local index)."""
        if not 0 <= row < len(self):
            raise IndexError(f"row {row} out of range for bundle of {len(self)}")
        return {name: arr[row].copy() for name, arr in self.fields.items()}

    def rows_for(self, sample_ids: np.ndarray) -> np.ndarray:
        """Map global sample ids (all present in this bundle) to rows."""
        order = np.argsort(self.sample_ids)
        pos = np.searchsorted(self.sample_ids, sample_ids, sorter=order)
        rows = order[pos]
        if not np.array_equal(self.sample_ids[rows], sample_ids):
            raise KeyError("some sample ids are not in this bundle")
        return rows


def bundle_paths_for(prefix: str, num_bundles: int) -> list[str]:
    """Deterministic bundle file names, zero-padded for stable sorting."""
    if num_bundles <= 0:
        raise ValueError("num_bundles must be positive")
    width = max(5, len(str(num_bundles - 1)))
    return [f"{prefix}/bundle_{i:0{width}d}.npz" for i in range(num_bundles)]


def write_bundles(
    fs: SimulatedFilesystem,
    fields: Mapping[str, np.ndarray],
    samples_per_bundle: int,
    prefix: str = "dataset",
) -> list[str]:
    """Pack a column-wise dataset into bundle files on the simulated PFS.

    ``fields`` maps field name to an array whose leading axis indexes
    samples *in generation order* — the order is preserved, reproducing
    the exploration-ordered HDF5 files of the paper.  The final bundle may
    be short.  Returns the bundle paths in order.
    """
    if samples_per_bundle <= 0:
        raise ValueError("samples_per_bundle must be positive")
    sizes = {name: np.asarray(a).shape[0] for name, a in fields.items()}
    if len(set(sizes.values())) != 1:
        raise ValueError(f"fields disagree on sample count: {sizes}")
    n = next(iter(sizes.values()))
    if n == 0:
        raise ValueError("cannot write an empty dataset")
    num_bundles = -(-n // samples_per_bundle)
    paths = bundle_paths_for(prefix, num_bundles)
    for b, path in enumerate(paths):
        lo = b * samples_per_bundle
        hi = min(n, lo + samples_per_bundle)
        ids = np.arange(lo, hi, dtype=np.int64)
        bundle = Bundle(
            ids, {name: np.asarray(a)[lo:hi] for name, a in fields.items()}
        )
        fs.write(path, bundle, bundle.nbytes)
    return paths
