"""Type-agnostic hierarchical data nodes (Conduit analog).

The paper's data store uses LLNL Conduit to hold samples of arbitrary
schema ("a data-type-agnostic in-memory framework for managing data
samples").  :class:`ConduitNode` reproduces the part the store relies on:
a tree addressed by ``/``-separated paths whose leaves are NumPy arrays or
scalars, with byte accounting and flat-dict conversion.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

import numpy as np

__all__ = ["ConduitNode"]


class ConduitNode:
    """A tree of named leaves addressed by ``/``-separated paths.

    >>> n = ConduitNode()
    >>> n["outputs/scalars"] = np.zeros(15)
    >>> n["outputs/images"] = np.zeros((12, 16, 16))
    >>> sorted(n.leaf_paths())
    ['outputs/images', 'outputs/scalars']
    >>> n["outputs/scalars"].shape
    (15,)
    """

    __slots__ = ("_children", "_leaves")

    def __init__(self, data: Mapping[str, Any] | None = None) -> None:
        self._children: dict[str, ConduitNode] = {}
        self._leaves: dict[str, np.ndarray] = {}
        if data:
            for path, value in data.items():
                self[path] = value

    # -- path access ---------------------------------------------------------

    def __setitem__(self, path: str, value: Any) -> None:
        head, _, rest = self._split(path)
        if rest:
            if head in self._leaves:
                raise KeyError(f"{head!r} is a leaf, cannot descend into it")
            child = self._children.setdefault(head, ConduitNode())
            child[rest] = value
        else:
            if head in self._children:
                raise KeyError(f"{head!r} is an interior node, cannot store a leaf")
            self._leaves[head] = np.asarray(value)

    def __getitem__(self, path: str) -> Any:
        head, _, rest = self._split(path)
        if rest:
            if head not in self._children:
                raise KeyError(path)
            return self._children[head][rest]
        if head in self._leaves:
            return self._leaves[head]
        if head in self._children:
            return self._children[head]
        raise KeyError(path)

    def __contains__(self, path: str) -> bool:
        try:
            self[path]
            return True
        except KeyError:
            return False

    @staticmethod
    def _split(path: str) -> tuple[str, str, str]:
        if not path or path.startswith("/") or path.endswith("/"):
            raise KeyError(f"invalid conduit path {path!r}")
        head, sep, rest = path.partition("/")
        return head, sep, rest

    # -- introspection -----------------------------------------------------------

    def leaf_paths(self) -> Iterator[str]:
        """Yield every leaf path in this subtree."""
        for name in self._leaves:
            yield name
        for name, child in self._children.items():
            for sub in child.leaf_paths():
                yield f"{name}/{sub}"

    @property
    def nbytes(self) -> int:
        total = sum(v.nbytes for v in self._leaves.values())
        return total + sum(c.nbytes for c in self._children.values())

    def to_flat(self) -> dict[str, np.ndarray]:
        """Flatten to ``{path: array}``."""
        return {p: self[p] for p in self.leaf_paths()}

    @classmethod
    def from_flat(cls, flat: Mapping[str, Any]) -> "ConduitNode":
        return cls(flat)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConduitNode):
            return NotImplemented
        a, b = self.to_flat(), other.to_flat()
        if set(a) != set(b):
            return False
        return all(np.array_equal(a[k], b[k]) for k in a)

    def __repr__(self) -> str:
        return f"ConduitNode(leaves={sorted(self.leaf_paths())})"
