"""Dataset partitioning across LTFB trainers.

LTFB "begins by initializing multiple trainers and partitioning the
training dataset between them."  Because the paper's bundle files are
ordered by parameter-space exploration, the natural contiguous split gives
each trainer a *biased* silo — precisely the regime where tournament model
exchange beats K-independent training (Fig. 13).  A strided split is also
provided for controlled comparisons (it de-biases the silos) and a random
split for everything in between.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

__all__ = ["partition_indices", "partition_items"]

T = TypeVar("T")


def partition_indices(
    n_items: int,
    k: int,
    mode: str = "contiguous",
    rng: np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Split ``range(n_items)`` into ``k`` disjoint, exhaustive parts.

    Modes
    -----
    - ``"contiguous"`` — consecutive blocks (the paper's file-range split;
      non-IID when items are in exploration order).
    - ``"strided"`` — round-robin (near-IID silos).
    - ``"random"`` — a seeded random permutation cut into blocks
      (requires ``rng``).

    Block sizes differ by at most one item.
    """
    if n_items <= 0:
        raise ValueError(f"n_items must be positive, got {n_items}")
    if not 1 <= k <= n_items:
        raise ValueError(f"k must be in [1, {n_items}], got {k}")
    if mode == "contiguous":
        return [np.array(part) for part in np.array_split(np.arange(n_items), k)]
    if mode == "strided":
        return [np.arange(r, n_items, k) for r in range(k)]
    if mode == "random":
        if rng is None:
            raise ValueError("mode='random' requires an rng")
        perm = rng.permutation(n_items)
        return [np.sort(part) for part in np.array_split(perm, k)]
    raise ValueError(f"unknown partition mode {mode!r}")


def partition_items(
    items: Sequence[T],
    k: int,
    mode: str = "contiguous",
    rng: np.random.Generator | None = None,
) -> list[list[T]]:
    """Partition arbitrary items (e.g. bundle paths) by index."""
    parts = partition_indices(len(items), k, mode=mode, rng=rng)
    return [[items[int(i)] for i in part] for part in parts]
