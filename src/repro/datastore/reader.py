"""Data readers: how a trainer gets its mini-batches.

Three readers with one interface:

- :class:`ArrayReader` — in-memory column arrays (no file system); used
  when ingestion is not the subject under study.
- :class:`NaiveReader` — the baseline the paper criticizes: every
  mini-batch opens the bundle files containing its randomly drawn samples,
  so each process opens many files and each file is hit by many batches.
- :class:`StoreReader` — backed by the distributed data store, in
  ``dynamic`` mode (cache on first touch during epoch 0) or ``preload``
  mode (populate before training); after population it never touches the
  file system — the invariant the paper's Figure 5 illustrates and our
  tests assert.

Readers shuffle with their own :class:`numpy.random.Generator` so epoch
order is reproducible and independent across trainers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.cluster.filesystem import SimulatedFilesystem
from repro.datastore.bundle import Bundle
from repro.datastore.store import DistributedDataStore, consumer_ranks_for_batch

__all__ = ["MiniBatch", "Reader", "ArrayReader", "NaiveReader", "StoreReader"]


@dataclass
class MiniBatch:
    """One training step's data: stacked field arrays plus provenance."""

    feeds: dict[str, np.ndarray]
    sample_ids: np.ndarray

    @property
    def size(self) -> int:
        return int(self.sample_ids.size)


class Reader(ABC):
    """Iterable source of mini-batches over a fixed sample population."""

    def __init__(self, sample_ids: Sequence[int], rng: np.random.Generator) -> None:
        self.sample_ids = np.asarray(sample_ids, dtype=np.int64)
        if self.sample_ids.ndim != 1 or self.sample_ids.size == 0:
            raise ValueError("sample_ids must be a non-empty 1-D sequence")
        self._rng = rng
        self.epochs_completed = 0

    @property
    def num_samples(self) -> int:
        return int(self.sample_ids.size)

    def steps_per_epoch(self, batch_size: int, drop_last: bool = True) -> int:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        n = self.num_samples
        return n // batch_size if drop_last else -(-n // batch_size)

    def epoch(
        self, batch_size: int, drop_last: bool = True
    ) -> Iterator[MiniBatch]:
        """Yield one epoch of mini-batches over a fresh random permutation."""
        steps = self.steps_per_epoch(batch_size, drop_last)
        if steps == 0:
            raise ValueError(
                f"batch_size {batch_size} exceeds population {self.num_samples}"
            )
        perm = self._rng.permutation(self.num_samples)
        for s in range(steps):
            ids = self.sample_ids[perm[s * batch_size : (s + 1) * batch_size]]
            yield MiniBatch(self._fetch(ids), ids)
        self.epochs_completed += 1

    @abstractmethod
    def _fetch(self, ids: np.ndarray) -> dict[str, np.ndarray]:
        """Materialize the batch for the given global sample ids."""


class ArrayReader(Reader):
    """Reads directly from in-memory column arrays indexed by sample id."""

    def __init__(
        self,
        fields: Mapping[str, np.ndarray],
        sample_ids: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        super().__init__(sample_ids, rng)
        self._fields = {k: np.asarray(v) for k, v in fields.items()}
        n = {k: v.shape[0] for k, v in self._fields.items()}
        if len(set(n.values())) != 1:
            raise ValueError(f"fields disagree on sample count: {n}")
        if self.sample_ids.max() >= next(iter(n.values())):
            raise ValueError("sample ids exceed field length")

    def _fetch(self, ids: np.ndarray) -> dict[str, np.ndarray]:
        return {k: v[ids] for k, v in self._fields.items()}


class _BundleIndexed(Reader):
    """Shared logic for readers that locate samples in bundle files."""

    def __init__(
        self,
        fs: SimulatedFilesystem,
        bundle_paths: Sequence[str],
        samples_per_bundle: int,
        sample_ids: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        super().__init__(sample_ids, rng)
        if samples_per_bundle <= 0:
            raise ValueError("samples_per_bundle must be positive")
        self._fs = fs
        self._paths = list(bundle_paths)
        self._spb = int(samples_per_bundle)
        self._local_bundle_base = {}  # path -> first global id, filled lazily

    def _bundle_of(self, sample_id: int) -> tuple[str, int]:
        """Locate a global sample id: (bundle path, row)."""
        b, row = divmod(int(sample_id), self._spb)
        if not 0 <= b < len(self._paths):
            raise KeyError(f"sample {sample_id} is outside the bundle set")
        return self._paths[b], row

    def _read_batch_from_files(
        self, ids: np.ndarray
    ) -> list[tuple[int, dict[str, np.ndarray]]]:
        """Open each touched bundle once and pull the needed rows.

        Returns ``(position, sample)`` pairs in batch order.
        """
        by_bundle: dict[str, list[tuple[int, int]]] = {}
        for pos, sid in enumerate(ids):
            path, row = self._bundle_of(int(sid))
            by_bundle.setdefault(path, []).append((pos, row))
        out: list[tuple[int, dict[str, np.ndarray]]] = []
        for path, entries in by_bundle.items():
            bundle: Bundle = self._fs.read_file(path)
            for pos, row in entries:
                out.append((pos, bundle.sample(row)))
        out.sort(key=lambda t: t[0])
        return out


class NaiveReader(_BundleIndexed):
    """File-per-batch ingestion with no caching (the Fig. 10 baseline)."""

    def _fetch(self, ids: np.ndarray) -> dict[str, np.ndarray]:
        samples = self._read_batch_from_files(ids)
        names = sorted(samples[0][1])
        return {
            name: np.stack([s[name] for _pos, s in samples], axis=0)
            for name in names
        }


class StoreReader(_BundleIndexed):
    """Reader backed by the distributed in-memory data store.

    ``mode="preload"`` populates the store from the bundle files on
    construction; ``mode="dynamic"`` populates lazily during the first
    epoch (caching each sample on the rank that consumes it).  Either way,
    after population every batch is served purely from the store.
    """

    def __init__(
        self,
        fs: SimulatedFilesystem,
        bundle_paths: Sequence[str],
        samples_per_bundle: int,
        sample_ids: Sequence[int],
        rng: np.random.Generator,
        store: DistributedDataStore,
        mode: str = "preload",
    ) -> None:
        super().__init__(fs, bundle_paths, samples_per_bundle, sample_ids, rng)
        if mode not in ("preload", "dynamic"):
            raise ValueError(f"mode must be 'preload' or 'dynamic', got {mode!r}")
        self.store = store
        self.mode = mode
        self.preload_report: dict[int, tuple[int, int]] | None = None
        if mode == "preload":
            # Only the bundles containing this reader's population.
            needed = sorted({self._bundle_of(int(s))[0] for s in self.sample_ids})
            self.preload_report = store.preload(fs, needed)

    def _fetch(self, ids: np.ndarray) -> dict[str, np.ndarray]:
        file_samples: dict[int, dict[str, np.ndarray]] = {}
        if self.mode == "dynamic":
            missing = [int(s) for s in ids if s not in self.store]
            if missing:
                consumers = consumer_ranks_for_batch(ids.size, self.store.num_ranks)
                pos_of = {int(s): p for p, s in enumerate(ids)}
                for pos, sample in self._read_batch_from_files(
                    np.asarray(missing, dtype=np.int64)
                ):
                    sid = missing[pos]
                    file_samples[sid] = sample
                    self.store.cache_sample(
                        int(consumers[pos_of[sid]]), sid, sample
                    )
            # With an evicting (over-capacity) store, caching this batch's
            # misses may itself evict this batch's hits; re-read the
            # casualties from their files (uncached) so the batch always
            # assembles.
            still_missing = [
                int(s) for s in ids if s not in self.store and int(s) not in file_samples
            ]
            if still_missing:
                for pos, sample in self._read_batch_from_files(
                    np.asarray(still_missing, dtype=np.int64)
                ):
                    file_samples[still_missing[pos]] = sample
        return self.store.fetch_batch(ids, fallback=file_samples or None)
