"""Data readers: how a trainer gets its mini-batches.

Three readers with one interface:

- :class:`ArrayReader` — in-memory column arrays (no file system); used
  when ingestion is not the subject under study.
- :class:`NaiveReader` — the baseline the paper criticizes: every
  mini-batch opens the bundle files containing its randomly drawn samples,
  so each process opens many files and each file is hit by many batches.
- :class:`StoreReader` — backed by the distributed data store, in
  ``dynamic`` mode (cache on first touch during epoch 0) or ``preload``
  mode (populate before training); after population it never touches the
  file system — the invariant the paper's Figure 5 illustrates and our
  tests assert.

Readers shuffle with their own :class:`numpy.random.Generator` so epoch
order is reproducible and independent across trainers.

The data path is split into two phases (paper Section III-B overlaps the
second with training compute):

- :meth:`Reader.plan_epoch` — *deciding* the batches.  Deterministic and
  I/O-free; the only phase that touches the reader RNG.  Returns an
  :class:`EpochPlan` of :class:`BatchPlan` entries plus the RNG state the
  plan was drawn from, so an in-flight epoch is replayable from a
  checkpoint.
- :meth:`Reader.materialize` — *building* one planned batch.  RNG-free,
  so it can run ahead on a background thread
  (:class:`~repro.datastore.pipeline.PrefetchingReader`) without
  perturbing the sequence of batches a trainer sees.

:meth:`Reader.epoch` is the synchronous composition of the two.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.cluster.filesystem import SimulatedFilesystem
from repro.datastore.bundle import Bundle
from repro.datastore.store import DistributedDataStore, consumer_ranks_for_batch

__all__ = [
    "MiniBatch",
    "BatchPlan",
    "EpochPlan",
    "Reader",
    "ArrayReader",
    "NaiveReader",
    "StoreReader",
]


@dataclass
class MiniBatch:
    """One training step's data: stacked field arrays plus provenance."""

    feeds: dict[str, np.ndarray]
    sample_ids: np.ndarray

    @property
    def size(self) -> int:
        return int(self.sample_ids.size)


@dataclass(frozen=True)
class BatchPlan:
    """One planned mini-batch: which samples, and where in the schedule.

    Produced by :meth:`Reader.plan_epoch`; consumed by
    :meth:`Reader.materialize`.  Carries no data — only the decision.
    """

    epoch_index: int
    step_index: int
    sample_ids: np.ndarray
    is_last: bool  # final batch of its epoch

    @property
    def size(self) -> int:
        return int(self.sample_ids.size)


@dataclass(frozen=True)
class EpochPlan:
    """A full epoch's batch schedule plus the RNG provenance to replay it.

    ``rng_state`` is the reader RNG's bit-generator state *before* the
    permutation was drawn: restoring it and calling
    :meth:`Reader.plan_epoch` again regenerates this exact plan — the
    mechanism mid-epoch checkpoint resume is built on.

    ``universe_version`` pins *which* sample universe the plan was drawn
    against.  ``None`` for fixed-population readers; streaming readers
    (:class:`~repro.ingest.StreamReader`) stamp the frozen snapshot
    version here so a replayed plan re-freezes the identical id set even
    if the universe has since grown.
    """

    epoch_index: int
    batch_size: int
    drop_last: bool
    rng_state: dict
    batches: tuple[BatchPlan, ...]
    universe_version: int | None = None

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[BatchPlan]:
        return iter(self.batches)


class Reader(ABC):
    """Iterable source of mini-batches over a fixed sample population.

    ``epochs_completed`` counts *delivered* epochs: it advances exactly
    when an epoch's final batch is handed to the consumer (not when the
    exhausted iterator is polled one more time), so a trainer that has
    consumed N full epochs reports N even if it stopped on the epoch's
    last step.  Partially consumed epochs never count.
    """

    def __init__(self, sample_ids: Sequence[int], rng: np.random.Generator) -> None:
        self.sample_ids = np.asarray(sample_ids, dtype=np.int64)
        if self.sample_ids.ndim != 1 or self.sample_ids.size == 0:
            raise ValueError("sample_ids must be a non-empty 1-D sequence")
        self._rng = rng
        self.epochs_completed = 0
        # Epochs whose plan has been drawn (may run ahead of delivery
        # under a prefetching pipeline); assigns EpochPlan.epoch_index.
        self._epochs_planned = 0

    @property
    def num_samples(self) -> int:
        return int(self.sample_ids.size)

    def steps_per_epoch(self, batch_size: int, drop_last: bool = True) -> int:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        n = self.num_samples
        return n // batch_size if drop_last else -(-n // batch_size)

    # -- plan phase (RNG, no I/O) -------------------------------------------

    def plan_epoch(self, batch_size: int, drop_last: bool = True) -> EpochPlan:
        """Decide one epoch's batches: the only phase that touches the RNG.

        Draws a fresh permutation and slices it into
        :class:`BatchPlan` entries; performs no file or store I/O, so a
        plan can be drawn arbitrarily far ahead of materialization.
        """
        universe_version = self._freeze_plan_universe()
        steps = self.steps_per_epoch(batch_size, drop_last)
        if steps == 0:
            raise ValueError(
                f"batch_size {batch_size} exceeds population {self.num_samples}"
            )
        rng_state = self._rng.bit_generator.state
        perm = self._rng.permutation(self.num_samples)
        epoch_index = self._epochs_planned
        self._epochs_planned += 1
        batches = tuple(
            BatchPlan(
                epoch_index=epoch_index,
                step_index=s,
                sample_ids=self.sample_ids[perm[s * batch_size : (s + 1) * batch_size]],
                is_last=(s == steps - 1),
            )
            for s in range(steps)
        )
        return EpochPlan(
            epoch_index, batch_size, drop_last, rng_state, batches,
            universe_version=universe_version,
        )

    def _freeze_plan_universe(self) -> int | None:
        """Pin the sample universe the next plan will be drawn against.

        Called at the top of :meth:`plan_epoch`, before anything else reads
        ``self.sample_ids``.  Fixed-population readers return ``None``;
        growing-universe readers override this to freeze a snapshot
        (updating ``self.sample_ids``) and return its version, which is
        stamped into the resulting :class:`EpochPlan` for replay.
        """
        return None

    # -- materialize phase (I/O, no RNG) ------------------------------------

    def materialize(self, plan: BatchPlan) -> MiniBatch:
        """Build one planned batch.  RNG-free, hence safe to run ahead."""
        return MiniBatch(self._fetch(plan.sample_ids, plan=plan), plan.sample_ids)

    # -- synchronous composition --------------------------------------------

    def epoch(
        self, batch_size: int, drop_last: bool = True
    ) -> Iterator[MiniBatch]:
        """Yield one epoch of mini-batches: plan, then materialize each."""
        plan = self.plan_epoch(batch_size, drop_last)
        for bp in plan:
            mb = self.materialize(bp)
            if bp.is_last:
                self.epochs_completed += 1
            yield mb

    @abstractmethod
    def _fetch(
        self, ids: np.ndarray, plan: BatchPlan | None = None
    ) -> dict[str, np.ndarray]:
        """Materialize the batch for the given global sample ids.

        ``plan`` (when the fetch serves a planned batch) lets store-backed
        readers attribute exchange accounting to the planned epoch/step.
        """


class ArrayReader(Reader):
    """Reads directly from in-memory column arrays indexed by sample id."""

    def __init__(
        self,
        fields: Mapping[str, np.ndarray],
        sample_ids: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        super().__init__(sample_ids, rng)
        self._fields = {k: np.asarray(v) for k, v in fields.items()}
        n = {k: v.shape[0] for k, v in self._fields.items()}
        if len(set(n.values())) != 1:
            raise ValueError(f"fields disagree on sample count: {n}")
        if self.sample_ids.min() < 0:
            raise ValueError("sample ids must be non-negative")
        if self.sample_ids.max() >= next(iter(n.values())):
            raise ValueError("sample ids exceed field length")

    def _fetch(
        self, ids: np.ndarray, plan: BatchPlan | None = None
    ) -> dict[str, np.ndarray]:
        return {k: v[ids] for k, v in self._fields.items()}


class _BundleIndexed(Reader):
    """Shared logic for readers that locate samples in bundle files."""

    def __init__(
        self,
        fs: SimulatedFilesystem,
        bundle_paths: Sequence[str],
        samples_per_bundle: int,
        sample_ids: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        super().__init__(sample_ids, rng)
        if samples_per_bundle <= 0:
            raise ValueError("samples_per_bundle must be positive")
        self._fs = fs
        self._paths = list(bundle_paths)
        self._spb = int(samples_per_bundle)

    def _bundle_of(self, sample_id: int) -> tuple[str, int]:
        """Locate a global sample id: (bundle path, row)."""
        b, row = divmod(int(sample_id), self._spb)
        if not 0 <= b < len(self._paths):
            raise KeyError(f"sample {sample_id} is outside the bundle set")
        return self._paths[b], row

    def _read_batch_from_files(
        self, ids: np.ndarray
    ) -> list[tuple[int, dict[str, np.ndarray]]]:
        """Open each touched bundle once and pull the needed rows.

        Returns ``(position, sample)`` pairs in batch order.
        """
        by_bundle: dict[str, list[tuple[int, int]]] = {}
        for pos, sid in enumerate(ids):
            path, row = self._bundle_of(int(sid))
            by_bundle.setdefault(path, []).append((pos, row))
        out: list[tuple[int, dict[str, np.ndarray]]] = []
        for path, entries in by_bundle.items():
            bundle: Bundle = self._fs.read_file(path)
            for pos, row in entries:
                out.append((pos, bundle.sample(row)))
        out.sort(key=lambda t: t[0])
        return out


class NaiveReader(_BundleIndexed):
    """File-per-batch ingestion with no caching (the Fig. 10 baseline)."""

    def _fetch(
        self, ids: np.ndarray, plan: BatchPlan | None = None
    ) -> dict[str, np.ndarray]:
        samples = self._read_batch_from_files(ids)
        names = sorted(samples[0][1])
        return {
            name: np.stack([s[name] for _pos, s in samples], axis=0)
            for name in names
        }


class StoreReader(_BundleIndexed):
    """Reader backed by the distributed in-memory data store.

    ``mode="preload"`` populates the store from the bundle files on
    construction; ``mode="dynamic"`` populates lazily during the first
    epoch (caching each sample on the rank that consumes it).  Either way,
    after population every batch is served purely from the store.
    """

    def __init__(
        self,
        fs: SimulatedFilesystem,
        bundle_paths: Sequence[str],
        samples_per_bundle: int,
        sample_ids: Sequence[int],
        rng: np.random.Generator,
        store: DistributedDataStore,
        mode: str = "preload",
    ) -> None:
        super().__init__(fs, bundle_paths, samples_per_bundle, sample_ids, rng)
        if mode not in ("preload", "dynamic"):
            raise ValueError(f"mode must be 'preload' or 'dynamic', got {mode!r}")
        self.store = store
        self.mode = mode
        self.preload_report: dict[int, tuple[int, int]] | None = None
        if mode == "preload":
            # Only the bundles containing this reader's population.
            needed = sorted({self._bundle_of(int(s))[0] for s in self.sample_ids})
            self.preload_report = store.preload(fs, needed)

    def _fetch(
        self, ids: np.ndarray, plan: BatchPlan | None = None
    ) -> dict[str, np.ndarray]:
        file_samples: dict[int, dict[str, np.ndarray]] = {}
        if self.mode == "dynamic":
            missing = [int(s) for s in ids if s not in self.store]
            if missing:
                consumers = consumer_ranks_for_batch(ids.size, self.store.num_ranks)
                pos_of = {int(s): p for p, s in enumerate(ids)}
                for pos, sample in self._read_batch_from_files(
                    np.asarray(missing, dtype=np.int64)
                ):
                    sid = missing[pos]
                    file_samples[sid] = sample
                    self.store.cache_sample(
                        int(consumers[pos_of[sid]]), sid, sample
                    )
            # With an evicting (over-capacity) store, caching this batch's
            # misses may itself evict this batch's hits; re-read the
            # casualties from their files (uncached) so the batch always
            # assembles.
            still_missing = [
                int(s) for s in ids if s not in self.store and int(s) not in file_samples
            ]
            if still_missing:
                for pos, sample in self._read_batch_from_files(
                    np.asarray(still_missing, dtype=np.int64)
                ):
                    file_samples[still_missing[pos]] = sample
        return self.store.fetch_batch(ids, fallback=file_samples or None, plan=plan)
