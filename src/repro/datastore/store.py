"""The distributed in-memory data store (paper Section III-B).

Functional, in-process model of the store across the ranks of one trainer:

- every rank owns a disjoint *shard* of cached samples, capacity-limited
  by its host-memory budget (resource-set share of node memory);
- **preloading** assigns disjoint bundle files round-robin to ranks, each
  rank reading all samples of its files — "this minimizes the number of
  files each process opens concurrently, and ensures that each file is
  only opened by one process per trainer";
- **dynamic** population caches samples on the consuming rank as they are
  first touched during epoch 0;
- every mini-batch is assembled by an exchange from owner ranks to
  consumer ranks; the store records how many fetches crossed node
  boundaries (the shuffle the cost model prices and the store overlaps
  with compute).

The same shard/exchange logic can be driven by the SPMD communicator
(:func:`spmd_exchange_minibatch`) to demonstrate the store working over
real point-to-point messages.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.cluster.filesystem import SimulatedFilesystem
from repro.comm.spmd import SpmdComm
from repro.comm.topology import RankPlacement

if TYPE_CHECKING:
    from repro.telemetry import TelemetryHub

__all__ = [
    "InsufficientMemoryError",
    "DataStoreStats",
    "DistributedDataStore",
    "consumer_ranks_for_batch",
    "spmd_exchange_minibatch",
]


class InsufficientMemoryError(RuntimeError):
    """A rank's shard would exceed its host-memory budget.

    This is the error behind two paper observations: preloading was
    impossible with 1-2 GPUs on the 1M-sample set (Fig. 10), and a 4-node
    trainer could not hold the 10M-sample set (Fig. 11 baseline ran on 16
    nodes with 1 rank per node instead).
    """


@dataclass
class DataStoreStats:
    """Counters over the lifetime of the store.

    ``per_rank_bytes`` mirrors each rank's current shard occupancy (one
    entry per rank, maintained by the store as samples are cached and
    evicted) — the per-rank memory-balance view Fig. 10 style analyses
    read.
    """

    cached_samples: int = 0
    cached_bytes: int = 0
    local_fetches: int = 0
    remote_fetches: int = 0
    local_bytes: int = 0
    remote_bytes: int = 0
    evictions: int = 0
    admitted: int = 0
    per_rank_bytes: list[int] = field(default_factory=list)

    @property
    def total_fetches(self) -> int:
        return self.local_fetches + self.remote_fetches

    @property
    def remote_fraction(self) -> float:
        total = self.total_fetches
        return self.remote_fetches / total if total else 0.0


def consumer_ranks_for_batch(batch_size: int, num_ranks: int) -> np.ndarray:
    """Map each position of a mini-batch to the data-parallel rank that
    consumes it (contiguous blocks, matching LBANN's sample-to-rank
    distribution within a mini-batch)."""
    if batch_size <= 0 or num_ranks <= 0:
        raise ValueError("batch_size and num_ranks must be positive")
    return (np.arange(batch_size) * num_ranks) // batch_size


class DistributedDataStore:
    """Owner-sharded sample cache for one trainer.

    Parameters
    ----------
    num_ranks:
        Ranks (processes) of the trainer.
    bytes_per_rank:
        Host-memory budget of each rank's shard.
    placement:
        Optional rank-to-node placement; when given, fetch statistics
        distinguish intra-node from inter-node transfers (a fetch from the
        *same rank* is free and counts as local).
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryHub`; when attached,
        every :meth:`fetch_batch` emits a ``datastore_fetch`` event with
        the batch's local/remote fetch deltas.
    """

    def __init__(
        self,
        num_ranks: int,
        bytes_per_rank: int,
        placement: RankPlacement | None = None,
        evicting: bool = False,
        telemetry: "TelemetryHub | None" = None,
    ) -> None:
        if num_ranks <= 0:
            raise ValueError(f"num_ranks must be positive, got {num_ranks}")
        if bytes_per_rank <= 0:
            raise ValueError(f"bytes_per_rank must be positive, got {bytes_per_rank}")
        if placement is not None and placement.num_ranks != num_ranks:
            raise ValueError(
                f"placement has {placement.num_ranks} ranks, store has {num_ranks}"
            )
        self.num_ranks = num_ranks
        self.bytes_per_rank = int(bytes_per_rank)
        self.placement = placement
        # evicting=True turns each shard into an LRU cache: when a
        # partition exceeds the memory budget, the oldest-touched samples
        # are dropped and re-read from the file system on their next use
        # — the partial-caching regime of over-capacity dynamic stores
        # (see TrainerPerfModel.dynamic_hit_fraction).  Preloading with
        # eviction is a configuration error: a preloaded store must hold
        # everything.
        self.evicting = bool(evicting)
        # OrderedDict per shard: insertion/access order is the LRU order.
        self._shards: list[OrderedDict[int, dict[str, np.ndarray]]] = [
            OrderedDict() for _ in range(num_ranks)
        ]
        self._shard_bytes = [0] * num_ranks
        self._owner: dict[int, int] = {}
        # Round-robin placement cursor for admitted (streamed) samples.
        self._admit_cursor = 0
        self.stats = DataStoreStats(per_rank_bytes=[0] * num_ranks)
        self.telemetry = telemetry

    # -- population ---------------------------------------------------------

    def cache_sample(
        self, rank: int, sample_id: int, sample: Mapping[str, np.ndarray]
    ) -> None:
        """Cache one sample on ``rank`` (dynamic-mode population).

        Over-budget inserts raise :class:`InsufficientMemoryError`, or —
        with ``evicting=True`` — drop the rank's least-recently-used
        samples to make room.
        """
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"invalid rank {rank}")
        if sample_id in self._owner:
            return  # already cached (idempotent)
        nbytes = sum(np.asarray(v).nbytes for v in sample.values())
        if self._shard_bytes[rank] + nbytes > self.bytes_per_rank:
            if not self.evicting or nbytes > self.bytes_per_rank:
                raise InsufficientMemoryError(
                    f"rank {rank} shard would hold "
                    f"{self._shard_bytes[rank] + nbytes} bytes, budget is "
                    f"{self.bytes_per_rank}"
                )
            shard = self._shards[rank]
            while shard and self._shard_bytes[rank] + nbytes > self.bytes_per_rank:
                victim_id, victim = shard.popitem(last=False)  # LRU end
                victim_bytes = sum(v.nbytes for v in victim.values())
                self._shard_bytes[rank] -= victim_bytes
                del self._owner[victim_id]
                self.stats.evictions += 1
                self.stats.cached_samples -= 1
                self.stats.cached_bytes -= victim_bytes
        self._shards[rank][sample_id] = {
            k: np.asarray(v) for k, v in sample.items()
        }
        self._shard_bytes[rank] += nbytes
        self._owner[sample_id] = rank
        self.stats.cached_samples += 1
        self.stats.cached_bytes += nbytes
        self.stats.per_rank_bytes[rank] = self._shard_bytes[rank]

    def admit(
        self,
        sample_id: int,
        sample: Mapping[str, np.ndarray],
        rank: int | None = None,
    ) -> int:
        """Admit one *streamed* sample (no backing file) into the store.

        The ingestion analog of :meth:`cache_sample`: placement is chosen
        by the store — round-robin over ranks in admission order unless
        ``rank`` is forced — so live traffic spreads evenly without the
        bundle-to-rank assignment preloading relies on.  Idempotent per
        sample id.  Returns the rank the sample landed on (or already
        lives on).  Eviction accounting is shared with
        :meth:`cache_sample`: over-budget admissions on an evicting store
        drop LRU residents and count into ``stats.evictions``.
        """
        if sample_id in self._owner:
            return self._owner[sample_id]
        if rank is None:
            rank = self._admit_cursor % self.num_ranks
        self.cache_sample(rank, sample_id, sample)
        self._admit_cursor += 1
        self.stats.admitted += 1
        return rank

    def preload(
        self,
        fs: SimulatedFilesystem,
        bundle_paths: Sequence[str],
        samples_per_bundle: int | None = None,
    ) -> dict[int, tuple[int, int]]:
        """Preload by assigning files round-robin to ranks.

        Each rank opens each of its files exactly once and caches every
        sample in it.  Returns per-rank ``(files_read, bytes_read)`` for
        cost accounting.  ``samples_per_bundle`` is unused functionally
        (bundles know their contents) and accepted for API symmetry.
        """
        if self.evicting:
            raise ValueError(
                "preloading an evicting store is a configuration error: "
                "a preloaded store must hold its whole partition"
            )
        per_rank: dict[int, tuple[int, int]] = {r: (0, 0) for r in range(self.num_ranks)}
        for i, path in enumerate(bundle_paths):
            rank = i % self.num_ranks
            bundle = fs.read_file(path)
            for row in range(len(bundle)):
                sid = int(bundle.sample_ids[row])
                self.cache_sample(rank, sid, bundle.sample(row))
            files, nbytes = per_rank[rank]
            per_rank[rank] = (files + 1, nbytes + bundle.nbytes)
        return per_rank

    # -- queries --------------------------------------------------------------

    def __contains__(self, sample_id: int) -> bool:
        return sample_id in self._owner

    def owner_of(self, sample_id: int) -> int:
        return self._owner[sample_id]

    @property
    def num_cached(self) -> int:
        return len(self._owner)

    def shard_bytes(self, rank: int) -> int:
        return self._shard_bytes[rank]

    def occupancy_fraction(self) -> float:
        """Max shard occupancy relative to its budget (drives the
        cache-pressure penalty of the performance model)."""
        return max(self._shard_bytes) / self.bytes_per_rank

    # -- mini-batch exchange ----------------------------------------------------

    def fetch_batch(
        self,
        sample_ids: Sequence[int],
        field_names: Sequence[str] | None = None,
        fallback: Mapping[int, Mapping[str, np.ndarray]] | None = None,
        plan: "object | None" = None,
    ) -> dict[str, np.ndarray]:
        """Assemble a mini-batch from the shards.

        Each batch position is consumed by the rank
        ``consumer_ranks_for_batch`` assigns; a fetch whose owner differs
        from its consumer is a shuffle transfer (remote if the two ranks
        are on different nodes under the placement, or if no placement was
        given).  Returns stacked field arrays in batch order.

        ``fallback`` supplies samples not resident in the store (an
        evicting store may have dropped them); fallback samples count as
        neither local nor remote fetches — their cost is the file read the
        caller already performed.

        ``plan`` is the :class:`~repro.datastore.reader.BatchPlan` this
        fetch materializes, when there is one; its epoch/step are stamped
        into the ``datastore_fetch`` event so exchange accounting can be
        attributed per planned batch even when a prefetching pipeline
        fetches ahead of the training step that consumes it.

        When the attached hub is tracing, the whole assembly is one
        ``store_fetch`` span (nesting under the materialization span of
        whichever thread — trainer or prefetch producer — ran it),
        annotated with the batch's local/remote fetch split.
        """
        tracer = getattr(self.telemetry, "tracer", None)
        if tracer is None:
            return self._fetch_batch(sample_ids, field_names, fallback, plan)
        before = (self.stats.local_fetches, self.stats.remote_fetches)
        with tracer.span(
            "store_fetch", cat="data", batch_size=len(sample_ids)
        ) as span:
            batch = self._fetch_batch(sample_ids, field_names, fallback, plan)
            span.attrs["local_fetches"] = self.stats.local_fetches - before[0]
            span.attrs["remote_fetches"] = self.stats.remote_fetches - before[1]
        return batch

    def _fetch_batch(
        self,
        sample_ids: Sequence[int],
        field_names: Sequence[str] | None = None,
        fallback: Mapping[int, Mapping[str, np.ndarray]] | None = None,
        plan: "object | None" = None,
    ) -> dict[str, np.ndarray]:
        ids = np.asarray(sample_ids, dtype=np.int64)
        if ids.ndim != 1 or ids.size == 0:
            raise ValueError("sample_ids must be a non-empty 1-D sequence")
        consumers = consumer_ranks_for_batch(ids.size, self.num_ranks)
        before = (
            self.stats.local_fetches,
            self.stats.remote_fetches,
            self.stats.local_bytes,
            self.stats.remote_bytes,
        )
        samples = []
        for pos, sid_np in enumerate(ids):
            sid = int(sid_np)
            if sid not in self._owner:
                if fallback is not None and sid in fallback:
                    samples.append(
                        {k: np.asarray(v) for k, v in fallback[sid].items()}
                    )
                    continue
                raise KeyError(f"sample {sid} is not cached in the data store")
            owner = self._owner[sid]
            shard = self._shards[owner]
            sample = shard[sid]
            if self.evicting:
                shard.move_to_end(sid)  # refresh LRU recency
            nbytes = sum(v.nbytes for v in sample.values())
            consumer = int(consumers[pos])
            if owner == consumer:
                self.stats.local_fetches += 1
                self.stats.local_bytes += nbytes
            else:
                same_node = (
                    self.placement.same_node(owner, consumer)
                    if self.placement is not None
                    else False
                )
                if same_node:
                    self.stats.local_fetches += 1
                    self.stats.local_bytes += nbytes
                else:
                    self.stats.remote_fetches += 1
                    self.stats.remote_bytes += nbytes
            samples.append(sample)
        if self.telemetry is not None:
            planned = {}
            if plan is not None:
                planned = {
                    "epoch": int(plan.epoch_index),
                    "step": int(plan.step_index),
                }
            self.telemetry.emit(
                "datastore_fetch",
                batch_size=int(ids.size),
                local_fetches=self.stats.local_fetches - before[0],
                remote_fetches=self.stats.remote_fetches - before[1],
                local_bytes=self.stats.local_bytes - before[2],
                remote_bytes=self.stats.remote_bytes - before[3],
                **planned,
            )
        names = list(field_names) if field_names else sorted(samples[0])
        batch = {}
        for name in names:
            batch[name] = np.stack([s[name] for s in samples], axis=0)
        return batch


def spmd_exchange_minibatch(
    comm: SpmdComm,
    shard: Mapping[int, Mapping[str, np.ndarray]],
    owner_of: Mapping[int, int],
    batch_ids: Sequence[int],
) -> list[dict[str, np.ndarray]]:
    """Run the store's mini-batch exchange over real SPMD messages.

    Every rank holds ``shard`` (its own cached samples) and the global
    ownership map; ``batch_ids`` lists the global mini-batch.  Each rank
    sends the samples it owns to the consumers that need them via a
    personalized all-to-all and returns the samples *it* consumes, in
    batch order.  This mirrors the non-blocking per-step shuffle of the
    paper's store (modulo the background-thread overlap, which is a
    performance concern handled by the cost model).
    """
    ids = np.asarray(batch_ids, dtype=np.int64)
    consumers = consumer_ranks_for_batch(ids.size, comm.size)
    # Build per-destination payloads from locally owned samples.
    outgoing: list[list[tuple[int, int, dict]]] = [[] for _ in range(comm.size)]
    for pos, sid_np in enumerate(ids):
        sid = int(sid_np)
        if owner_of[sid] == comm.rank:
            dest = int(consumers[pos])
            outgoing[dest].append((pos, sid, dict(shard[sid])))
    received = comm.alltoall(outgoing)
    mine = sorted(
        (pos, sample) for batch in received for pos, _sid, sample in batch
    )
    return [sample for _pos, sample in mine]
