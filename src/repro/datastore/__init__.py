"""Distributed in-memory data store and data ingestion (Section III-B).

The paper's data store caches training samples in host memory, sharded
across the ranks of a trainer, and assembles every mini-batch by shuffling
locally cached samples to the ranks that need them — after the first epoch
(dynamic mode) or a preload phase, *no data is read from the file system*.

- :mod:`repro.datastore.conduit` — type-agnostic hierarchical sample nodes
  (Conduit analog).
- :mod:`repro.datastore.bundle` — multi-sample bundle files (HDF5 analog)
  on the simulated PFS.
- :mod:`repro.datastore.store` — the distributed store: ownership,
  capacity accounting, mini-batch exchange, dynamic/preload population.
- :mod:`repro.datastore.reader` — training-side readers: a naive
  file-per-sample reader and a store-backed reader, each split into a
  deterministic RNG-only *plan* phase and an RNG-free *materialize* phase.
- :mod:`repro.datastore.pipeline` — plan/materialize cursors: the
  synchronous :class:`BatchPipeline` and the background-thread
  :class:`PrefetchingReader` that overlaps batch assembly with training
  compute (the paper's non-blocking exchange, Section III-B).
- :mod:`repro.datastore.partition` — dataset partitioning across LTFB
  trainers (contiguous bundle ranges by default, matching the paper's
  exploration-ordered files).
"""

from repro.datastore.conduit import ConduitNode
from repro.datastore.bundle import Bundle, bundle_paths_for, write_bundles
from repro.datastore.store import (
    DataStoreStats,
    DistributedDataStore,
    InsufficientMemoryError,
)
from repro.datastore.reader import (
    ArrayReader,
    BatchPlan,
    EpochPlan,
    MiniBatch,
    NaiveReader,
    Reader,
    StoreReader,
)
from repro.datastore.pipeline import BatchPipeline, PrefetchingReader, build_pipeline
from repro.datastore.partition import partition_indices, partition_items

__all__ = [
    "ConduitNode",
    "Bundle",
    "write_bundles",
    "bundle_paths_for",
    "DistributedDataStore",
    "DataStoreStats",
    "InsufficientMemoryError",
    "Reader",
    "ArrayReader",
    "NaiveReader",
    "StoreReader",
    "MiniBatch",
    "BatchPlan",
    "EpochPlan",
    "BatchPipeline",
    "PrefetchingReader",
    "build_pipeline",
    "partition_indices",
    "partition_items",
]
