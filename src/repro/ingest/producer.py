"""The producing side: a JAG campaign that streams finished samples.

:func:`~repro.workflow.campaign.run_campaign` generates the whole dataset
up front and bundles it onto the file system; :class:`StreamingCampaign`
is its online counterpart — the same design, the same simulator, the same
workflow-engine schedule, but each task's sample is *published into an
ingest channel at its simulated completion time* and no file is ever
written.  Production is pull-driven: :meth:`StreamingCampaign.pump`
advances the ensemble task-by-task in completion order
(:meth:`~repro.workflow.engine.EnsembleWorkflow.iter_results`) and stops
at the channel's high watermark, so channel backpressure reaches all the
way into the simulation schedule and the publish sequence is a pure
function of the pump-call sequence.

Streaming breaks one thing the offline path takes for granted: global
z-score normalization of the scalars (you cannot average what has not
been simulated yet).  The campaign instead simulates a small
*calibration prefix* of the design once at construction and freezes its
mean/std — every streamed sample is normalized with those statistics.
The calibration fields are exposed (:meth:`calibration_fields`) because
a streaming study needs *some* held-out data before training starts;
note the overlap caveat on that method.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.ingest.channel import IngestChannel, StreamedSample
from repro.jag.dataset import JagDatasetConfig, _sweep_order
from repro.jag.postprocess import derive_scalars
from repro.jag.sampling import design_points
from repro.jag.simulator import JagSimulator
from repro.workflow.engine import (
    EnsembleWorkflow,
    TaskResult,
    WorkerPoolSpec,
    WorkflowStats,
)

__all__ = ["StreamingCampaign"]


class StreamingCampaign:
    """A live JAG campaign publishing into an :class:`IngestChannel`.

    Parameters
    ----------
    dataset_config:
        Design size, schema, seed and exploration order — identical
        semantics to the offline campaign, so a streamed universe visits
        the same points in the same order as the bundled dataset would.
    pool:
        Simulated worker-pool geometry; the schedule decides completion
        order and ``produced_at`` stamps.
    task_seconds:
        Simulated duration of one JAG task (~1 CPU-minute in the paper).
    calibration:
        Design-prefix length simulated once at construction for the
        normalization statistics (capped at the design size).
    """

    def __init__(
        self,
        dataset_config: JagDatasetConfig,
        pool: WorkerPoolSpec | None = None,
        task_seconds: float = 60.0,
        calibration: int = 256,
    ) -> None:
        if task_seconds <= 0:
            raise ValueError("task_seconds must be positive")
        if calibration <= 0:
            raise ValueError("calibration must be positive")
        self.config = dataset_config
        self.pool = pool or WorkerPoolSpec()
        self.task_seconds = float(task_seconds)
        s = dataset_config.schema
        self._sim = JagSimulator(
            image_size=s.image_size, views=s.views, channels=s.channels
        )
        x = design_points(
            dataset_config.n_samples,
            s.n_params,
            method=dataset_config.design,
            seed=dataset_config.seed,
        ).astype(np.float32)
        if dataset_config.order == "sweep":
            x = x[_sweep_order(x, dataset_config.drive_bands)]
        self._x = x

        # Calibration prefix: simulate once, freeze normalization stats.
        n_cal = min(int(calibration), dataset_config.n_samples)
        state = self._sim.run(x[:n_cal])
        img = self._sim.render_images(state)
        raw = derive_scalars(state, img)
        mean = raw.mean(axis=0)
        std = raw.std(axis=0)
        self.scalar_mean = mean.astype(np.float32)
        self.scalar_std = np.where(std < 1e-6, 1.0, std).astype(np.float32)
        self._calibration = {
            "params": x[:n_cal].copy(),
            "scalars": ((raw - self.scalar_mean) / self.scalar_std).astype(
                np.float32
            ),
            "images": img.reshape(n_cal, -1).astype(np.float32),
        }

        # Completion-order iterator, started lazily on the first pump.
        self._iter: Iterator[TaskResult] | None = None
        self.pool_stats: WorkflowStats | None = None
        self.produced = 0
        self.exhausted = False
        self.clock_s = 0.0  # simulated time of the newest finished task

    def task_sample(self, task_id: int) -> dict[str, np.ndarray]:
        """Run the JAG physics for one design point (the workflow's
        ``task_fn``): simulate, render, post-process, normalize."""
        row = self._x[task_id : task_id + 1]
        state = self._sim.run(row)
        img = self._sim.render_images(state)
        scalars = (derive_scalars(state, img) - self.scalar_mean) / self.scalar_std
        return {
            "params": row[0],
            "scalars": scalars[0].astype(np.float32),
            "images": img.reshape(1, -1)[0].astype(np.float32),
        }

    def _results(self) -> Iterator[TaskResult]:
        times = [self.task_seconds] * self.config.n_samples
        workflow = EnsembleWorkflow(self.pool, task_fn=self.task_sample)
        _, self.pool_stats = workflow._schedule(times)
        return workflow.iter_results(times)

    def pump(self, channel: IngestChannel, max_tasks: int) -> int:
        """Advance up to ``max_tasks`` simulations, publishing each.

        Honors the channel's watermark pause: publication stops as soon
        as :attr:`IngestChannel.paused` turns on, leaving the remaining
        schedule untouched (those simulations simply have not run yet).
        Returns the number of samples published this call.
        """
        if max_tasks <= 0:
            raise ValueError("max_tasks must be positive")
        if self.exhausted:
            return 0
        if self._iter is None:
            self._iter = self._results()
        published = 0
        while published < max_tasks and not channel.paused:
            result = next(self._iter, None)
            if result is None:
                self.exhausted = True
                break
            self.clock_s = max(self.clock_s, result.end_time)
            channel.publish(
                StreamedSample(
                    sample_id=result.task_id,
                    fields=result.output,
                    produced_at=result.end_time,
                    task_id=result.task_id,
                )
            )
            self.produced += 1
            published += 1
        return published

    def calibration_fields(self) -> dict[str, np.ndarray]:
        """The simulated calibration prefix, normalized.

        Usable as an evaluation batch before anything has streamed in.
        Caveat: the campaign *also* streams these design points as
        regular tasks, so a universe that has absorbed the whole stream
        overlaps this set — fine for smoke studies and shape checks, not
        a clean held-out set for quality claims.
        """
        return {k: v.copy() for k, v in self._calibration.items()}

    def __repr__(self) -> str:
        return (
            f"StreamingCampaign(n={self.config.n_samples}, "
            f"produced={self.produced}, exhausted={self.exhausted})"
        )
