"""What the population drivers poll between rounds.

One :meth:`StreamingSource.poll` is one ingestion beat, always in the
same order:

1. **pump** — let the campaign advance up to ``tasks_per_poll``
   simulated completions, publishing into the channel (stopping early at
   the high watermark);
2. **age out** — evict pending samples older than the channel's
   ``max_age_s`` against the campaign's simulated clock;
3. **drain** — take every surviving pending sample;
4. **admit** — grow the :class:`~repro.ingest.SampleUniverse` (one new
   version when anything arrived) and the stores of every attached
   trainer's :class:`~repro.ingest.StreamReader`;
5. **re-synchronize** — suspend every trainer's data pipeline, rewinding
   any epoch plans a prefetch thread drew ahead, so the *next* plan of
   every trainer freezes the new snapshot (this is the determinism
   barrier: without it the plan-to-snapshot mapping would depend on
   thread timing);
6. **propagate** — tell the execution backend
   (:meth:`~repro.exec.base.ExecutionBackend.ingest_admit`) so worker
   processes holding replicas grow their copy of the universe
   identically;
7. **observe** — emit one ``ingest`` telemetry event with the poll's
   deltas (admissions, evictions, channel depth, producer lag, store
   occupancy).

Because steps 1-4 touch no trainer state and the universe only changes
here, the whole ingestion history is a pure function of the number of
polls — which is all a checkpoint needs to record (:meth:`state`) and a
resume needs to replay (:meth:`replay`).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.ingest.channel import IngestChannel
from repro.ingest.producer import StreamingCampaign
from repro.ingest.universe import SampleUniverse, StreamReader

__all__ = ["StreamingSource", "IngestReplayError"]


class IngestReplayError(ValueError):
    """A checkpointed ingestion cursor could not be reproduced by replay
    (different campaign seed/geometry, channel policy, or poll count)."""


class StreamingSource:
    """Bridges a producing campaign into a training population.

    Drivers call :meth:`poll` between rounds (they pass their trainers
    and backend); experiments call :meth:`prime` once before building
    the population, so there is a non-empty universe to construct
    readers over.  Both paths go through the same beat, so priming polls
    and training polls replay identically.
    """

    def __init__(
        self,
        campaign: StreamingCampaign,
        channel: IngestChannel,
        universe: SampleUniverse,
        tasks_per_poll: int = 32,
    ) -> None:
        if tasks_per_poll <= 0:
            raise ValueError("tasks_per_poll must be positive")
        self.campaign = campaign
        self.channel = channel
        self.universe = universe
        self.tasks_per_poll = int(tasks_per_poll)
        self.polls = 0
        self.telemetry = None  # drivers attach their hub
        self._last_store_evictions = 0
        self._last_evicted = 0

    # -- the ingestion beat --------------------------------------------------

    def _stores(self, trainers: Sequence) -> list:
        stores, seen = [], set()
        for t in trainers:
            store = getattr(getattr(t, "reader", None), "store", None)
            if store is not None and id(store) not in seen:
                seen.add(id(store))
                stores.append(store)
        return stores

    def poll(
        self,
        trainers: Sequence = (),
        backend=None,
        round_index: int | None = None,
    ) -> int:
        """Run one ingestion beat; returns samples admitted this poll."""
        self.campaign.pump(self.channel, self.tasks_per_poll)
        stale = self.channel.evict_stale(self.campaign.clock_s)
        # Snapshot backpressure *before* draining: a full drain always
        # releases the pause, so the post-drain reading would hide the
        # producer-side stall the live plane wants to see.
        paused = self.channel.paused
        peak_occupancy = self.channel.depth / self.channel.capacity
        drained = self.channel.drain()
        version_before = self.universe.version
        admitted = self.universe.admit(drained)

        stores = self._stores(trainers)
        if drained:
            for t in trainers:
                reader = getattr(t, "reader", None)
                if isinstance(reader, StreamReader):
                    reader.ingest_admit(drained, version=self.universe.version)
        if admitted:
            # Rewind plans drawn ahead of the growth point so every
            # trainer's next plan freezes the new snapshot.
            for t in trainers:
                t.suspend_data_pipeline()
            if backend is not None:
                backend.ingest_admit(drained, self.universe.version)

        self.polls += 1
        store_evictions = sum(s.stats.evictions for s in stores)
        evicted_delta = self.channel.stats.evicted - self._last_evicted
        store_evictions_delta = store_evictions - self._last_store_evictions
        self._last_evicted = self.channel.stats.evicted
        self._last_store_evictions = store_evictions
        if self.telemetry is not None:
            self.telemetry.emit(
                "ingest",
                round=round_index,
                admitted=admitted,
                evicted=evicted_delta,
                stale=stale,
                store_evictions=store_evictions_delta,
                depth=self.channel.depth,
                cursor=self.channel.cursor,
                universe_version=self.universe.version,
                universe_size=self.universe.size,
                producer_lag=self.channel.producer_lag,
                store_occupancy=max(
                    (s.occupancy_fraction() for s in stores), default=0.0
                ),
                paused=paused,
                channel_occupancy=peak_occupancy,
            )
        assert self.universe.version in (version_before, version_before + 1)
        return admitted

    def prime(self, min_samples: int, max_polls: int = 10_000) -> int:
        """Poll (with no trainers) until the universe holds at least
        ``min_samples``; returns the universe size reached.  Raises when
        the campaign exhausts or ``max_polls`` pass first."""
        for _ in range(max_polls):
            if self.universe.size >= min_samples:
                return self.universe.size
            self.poll()
            if self.campaign.exhausted and self.channel.depth == 0:
                break
        if self.universe.size < min_samples:
            raise RuntimeError(
                f"could not prime {min_samples} samples: universe holds "
                f"{self.universe.size} after {self.polls} polls "
                f"(campaign exhausted={self.campaign.exhausted})"
            )
        return self.universe.size

    # -- checkpoint / replay -------------------------------------------------

    def state(self) -> dict:
        """JSON-serializable ingestion cursor for the population
        checkpoint manifest."""
        return {
            "polls": self.polls,
            "cursor": self.channel.cursor,
            "universe_version": self.universe.version,
            "universe_size": self.universe.size,
        }

    def replay(self, state: Mapping) -> None:
        """Reproduce a checkpointed ingestion history on rebuilt campaign,
        channel and universe objects (same seeds and geometry).

        Polls (trainer-less) until ``state["polls"]`` total polls have
        run — the source may already have taken some (a resume that
        re-primed exactly like the original run), as long as it has not
        passed the checkpoint — then verifies the channel cursor and
        universe version/size match the checkpoint: the guarantee that
        resumed epoch plans will freeze identical snapshots.
        """
        remaining = int(state["polls"]) - self.polls
        if remaining < 0:
            raise IngestReplayError(
                f"replay target is {state['polls']} polls but this source "
                f"has already polled {self.polls} times"
            )
        for _ in range(remaining):
            self.poll()
        got = self.state()
        for key in ("cursor", "universe_version", "universe_size"):
            if got[key] != state[key]:
                raise IngestReplayError(
                    f"ingestion replay diverged on {key}: checkpoint has "
                    f"{state[key]}, replay produced {got[key]} — the "
                    "campaign/channel configuration does not match the "
                    "checkpointed run"
                )

    def __repr__(self) -> str:
        return (
            f"StreamingSource(polls={self.polls}, "
            f"universe={self.universe!r}, channel={self.channel!r})"
        )
