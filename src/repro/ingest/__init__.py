"""Streaming ingestion: train while the campaign is still producing.

The paper trains from a static pre-simulated JAG corpus staged through
the distributed data store; the north-star workload is *online* surrogate
training from a live ensemble (Meyer et al., 2023): samples flow from
running simulations straight into the trainers, with no file staging at
all.  This package connects the three pieces the repo already owns —
:mod:`repro.jag` (the simulator), :mod:`repro.workflow` (the ensemble
engine) and :mod:`repro.datastore` (the store) — into that pipeline:

- :class:`StreamingCampaign` — drives real JAG simulations through the
  workflow engine in simulated *completion* order and publishes each
  finished sample into a channel (:mod:`repro.ingest.producer`);
- :class:`IngestChannel` — the bounded producer/consumer queue between
  campaign and trainers: watermark-based backpressure, stale-sample
  eviction, pluggable retention (:mod:`repro.ingest.channel`);
- :class:`SampleUniverse` / :class:`StreamReader` — the growing sample
  population and the reader that plans epochs against immutable
  per-version snapshots of it (:mod:`repro.ingest.universe`);
- :class:`StreamingSource` — what the population drivers poll between
  rounds: pump the campaign, drain the channel, admit into universe and
  stores, re-synchronize every trainer's data pipeline, and emit
  ``ingest`` telemetry (:mod:`repro.ingest.source`).

Determinism contract: the universe only grows at round boundaries (poll
sites), every poll suspends all data pipelines (rewinding any epoch plans
drawn ahead by prefetch threads), and each epoch plan pins the universe
snapshot it was drawn against.  The delivered batch sequence is therefore
a pure function of the poll schedule — independent of prefetch depth,
thread timing and execution backend — and a mid-run checkpoint (snapshot
version + channel cursor + poll count) replays bit-identically.
"""

from repro.ingest.channel import (
    ChannelStats,
    IngestChannel,
    RecencyRetention,
    ReservoirRetention,
    RetentionPolicy,
    StreamedSample,
    resolve_retention,
)
from repro.ingest.producer import StreamingCampaign
from repro.ingest.source import IngestReplayError, StreamingSource
from repro.ingest.universe import SampleUniverse, StreamReader

__all__ = [
    "StreamedSample",
    "ChannelStats",
    "RetentionPolicy",
    "RecencyRetention",
    "ReservoirRetention",
    "resolve_retention",
    "IngestChannel",
    "SampleUniverse",
    "StreamReader",
    "StreamingCampaign",
    "StreamingSource",
    "IngestReplayError",
]
