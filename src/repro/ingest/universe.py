"""The growing sample universe and the reader that snapshots it.

The fixed-population assumption the rest of the data plane was built on
lives in exactly one place after this refactor: ``Reader.sample_ids``.
:class:`SampleUniverse` replaces it with an *append-only id log* plus a
version counter — version ``v`` freezes the first ``size_at(v)`` ids —
and :class:`StreamReader` plans every epoch against one frozen version:

- at plan time the reader freezes the universe's *current* version and
  stamps it into the :class:`~repro.datastore.reader.EpochPlan`
  (``universe_version``), so the plan is deterministic *per snapshot*;
- on checkpoint replay, :meth:`StreamReader.begin_replay` pins the next
  plan to the checkpointed version, so the in-flight epoch re-plans
  against the identical id set even though the universe has grown since.

Admission is idempotent per sample id.  The universe retains every
admitted sample's fields, which doubles as the fallback for store-backed
readers whose evicting store has dropped a streamed sample — there is no
file to re-read it from.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.datastore.reader import BatchPlan, Reader
from repro.datastore.store import DistributedDataStore
from repro.ingest.channel import StreamedSample

__all__ = ["SampleUniverse", "StreamReader"]


class SampleUniverse:
    """Append-only sample population with immutable version snapshots.

    ``version`` starts at 0 (empty) and bumps once per :meth:`admit` call
    that added at least one new sample; :meth:`snapshot_ids` returns the
    frozen id prefix of any past version.  The sequence of versions is a
    pure function of the sequence of admit calls, which is what makes
    checkpoint replay exact.
    """

    def __init__(self) -> None:
        self._log: list[int] = []  # admission order
        self._fields: dict[int, dict[str, np.ndarray]] = {}
        self._sizes: list[int] = [0]  # size frozen at each version

    @property
    def version(self) -> int:
        return len(self._sizes) - 1

    @property
    def size(self) -> int:
        return len(self._log)

    def __contains__(self, sample_id: int) -> bool:
        return int(sample_id) in self._fields

    def admit(self, samples: Iterable[StreamedSample]) -> int:
        """Append new samples (idempotent per id); returns how many were
        new.  Bumps :attr:`version` when anything was added."""
        added = 0
        for s in samples:
            sid = int(s.sample_id)
            if sid in self._fields:
                continue
            self._fields[sid] = {
                k: np.asarray(v) for k, v in s.fields.items()
            }
            self._log.append(sid)
            added += 1
        if added:
            self._sizes.append(len(self._log))
        return added

    def size_at(self, version: int) -> int:
        if not 0 <= version <= self.version:
            raise ValueError(
                f"version {version} is outside 0..{self.version}"
            )
        return self._sizes[version]

    def snapshot_ids(self, version: int) -> np.ndarray:
        """The frozen id set of ``version``, in admission order."""
        return np.asarray(self._log[: self.size_at(version)], dtype=np.int64)

    def fields_of(self, sample_id: int) -> dict[str, np.ndarray]:
        return self._fields[int(sample_id)]

    def batch(self, sample_ids: Sequence[int]) -> dict[str, np.ndarray]:
        """Stack the given samples' fields in batch order."""
        rows = [self._fields[int(s)] for s in sample_ids]
        names = sorted(rows[0])
        return {
            name: np.stack([r[name] for r in rows], axis=0) for name in names
        }

    def stack_fields(self, version: int | None = None) -> dict[str, np.ndarray]:
        """Column arrays over a whole snapshot (latest by default) —
        e.g. to pretrain an autoencoder on what has streamed in so far."""
        ids = self.snapshot_ids(self.version if version is None else version)
        return self.batch(ids)

    def warm(self, store: DistributedDataStore) -> int:
        """Admit every retained sample into ``store`` in admission order
        (e.g. to rebuild a store after a checkpoint replay).  Returns how
        many samples the store newly admitted."""
        before = store.stats.admitted
        for sid in self._log:
            store.admit(sid, self._fields[sid])
        return store.stats.admitted - before

    def __repr__(self) -> str:
        return f"SampleUniverse(size={self.size}, version={self.version})"


class StreamReader(Reader):
    """Reader over a :class:`SampleUniverse`, optionally store-backed.

    Each :meth:`~repro.datastore.reader.Reader.plan_epoch` freezes one
    universe snapshot: the latest version normally, or the version pinned
    by :meth:`begin_replay` when a checkpointed plan cursor is being
    restored.  Between plans, :attr:`sample_ids` always equals the last
    frozen snapshot — materialization never sees ids beyond it.

    With a ``store``, batches are fetched through the
    :class:`~repro.datastore.store.DistributedDataStore` (admitted
    streamed samples live in its shards; per-batch exchange accounting
    applies as usual) and evicted samples fall back to the universe's
    retained copy — they are *not* re-cached, mirroring the store
    reader's treatment of eviction casualties.  Without a store, batches
    stack straight from the universe.
    """

    def __init__(
        self,
        universe: SampleUniverse,
        rng: np.random.Generator,
        store: DistributedDataStore | None = None,
    ) -> None:
        if universe.size == 0:
            raise ValueError(
                "cannot build a StreamReader over an empty universe; "
                "prime the ingestion source first"
            )
        super().__init__(universe.snapshot_ids(universe.version), rng)
        self.universe = universe
        self.store = store
        self._frozen_version = universe.version
        self._replay_version: int | None = None

    @property
    def frozen_version(self) -> int:
        """The snapshot version the latest plan was drawn against."""
        return self._frozen_version

    def begin_replay(self, version: int) -> None:
        """Pin the *next* plan to a checkpointed snapshot version.

        One-shot: the plan after that returns to tracking the latest
        universe version.  Called by
        :meth:`~repro.datastore.pipeline.BatchPipeline.restore`.
        """
        self._replay_version = int(version)

    def _freeze_plan_universe(self) -> int:
        version = (
            self.universe.version
            if self._replay_version is None
            else self._replay_version
        )
        self._replay_version = None
        self.sample_ids = self.universe.snapshot_ids(version)
        self._frozen_version = version
        return version

    def ingest_admit(
        self, samples: Sequence[StreamedSample], version: int | None = None
    ) -> int:
        """Admit drained samples into this reader's universe and store.

        Idempotent (shared universes are admitted once no matter how many
        readers see the batch).  ``version`` asserts the universe version
        after admission — the cross-process consistency check worker
        replicas run so every replica sees identical growth.  Returns the
        number of samples new to the universe.
        """
        added = self.universe.admit(samples)
        if version is not None and self.universe.version != version:
            raise RuntimeError(
                f"universe diverged: version {self.universe.version} after "
                f"admission, driver expected {version}"
            )
        if self.store is not None:
            for s in samples:
                self.store.admit(int(s.sample_id), s.fields)
        return added

    def _fetch(
        self, ids: np.ndarray, plan: BatchPlan | None = None
    ) -> dict[str, np.ndarray]:
        if self.store is None:
            return self.universe.batch(ids)
        fallback = {
            int(s): self.universe.fields_of(int(s))
            for s in ids
            if int(s) not in self.store
        }
        return self.store.fetch_batch(ids, fallback=fallback or None, plan=plan)
