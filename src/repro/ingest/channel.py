"""The bounded channel between a producing campaign and the trainers.

A campaign produces samples at its own (simulated) rate; trainers drain
them at round boundaries.  The channel in between is deliberately small:
it bounds memory, it is where flow control lives (watermark hysteresis —
a full channel *pauses* the campaign instead of dropping work silently),
and it is where retention policy decides which samples survive when
production outruns consumption:

- :class:`RecencyRetention` — the freshest samples win; the oldest
  pending sample is dropped to make room.  Right when the campaign
  sweeps parameter space and late samples supersede early ones.
- :class:`ReservoirRetention` — classic reservoir sampling over the
  whole offered stream: every published sample gets an equal chance of
  being resident, so the channel holds an unbiased subsample no matter
  how far production runs ahead.  The policy owns its RNG; the decision
  sequence is a pure function of the publish sequence.

All clocks here are *simulated* seconds from the workflow engine
(:class:`~repro.ingest.channel.StreamedSample.produced_at` is the task's
simulated completion time), so stale-sample eviction and producer lag are
deterministic and testable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

__all__ = [
    "StreamedSample",
    "ChannelStats",
    "RetentionPolicy",
    "RecencyRetention",
    "ReservoirRetention",
    "resolve_retention",
    "IngestChannel",
]


@dataclass(frozen=True)
class StreamedSample:
    """One finished simulation, ready to be admitted into training.

    ``sample_id`` is the global sample id (the campaign's task id) and
    ``fields`` the per-sample field arrays (``params``/``scalars``/
    ``images``, each 1-D) — the same columns a
    :class:`~repro.jag.dataset.JagDataset` holds, one row at a time.
    ``produced_at`` is the simulated completion time of the producing
    task.
    """

    sample_id: int
    fields: Mapping[str, np.ndarray]
    produced_at: float
    task_id: int

    @property
    def nbytes(self) -> int:
        return sum(np.asarray(v).nbytes for v in self.fields.values())


@dataclass
class ChannelStats:
    """Lifetime counters of one channel."""

    published: int = 0  # samples offered by the producer
    accepted: int = 0  # samples that entered the pending queue
    retention_drops: int = 0  # displaced by the retention policy
    stale_evictions: int = 0  # aged out before being drained
    drained: int = 0  # samples handed to the consumer

    @property
    def evicted(self) -> int:
        """Samples lost between publish and drain, for any reason."""
        return self.retention_drops + self.stale_evictions


class RetentionPolicy(ABC):
    """Decides which sample survives when the channel is at capacity."""

    name: str = "abstract"

    @abstractmethod
    def displace(
        self, pending: "deque[StreamedSample]", incoming: StreamedSample
    ) -> StreamedSample | None:
        """Make room for ``incoming`` in a full ``pending`` queue.

        Either removes one resident sample (mutating ``pending``) and
        returns it — the caller then appends ``incoming`` — or returns
        ``incoming`` itself, meaning the new sample is the one dropped.
        """


class RecencyRetention(RetentionPolicy):
    """Freshest-wins: drop the oldest pending sample."""

    name = "recency"

    def displace(
        self, pending: "deque[StreamedSample]", incoming: StreamedSample
    ) -> StreamedSample | None:
        return pending.popleft()


class ReservoirRetention(RetentionPolicy):
    """Equal-probability residency over the whole offered stream.

    Standard reservoir sampling: the *i*-th offered sample (1-based,
    counted across the channel's lifetime) is kept with probability
    ``capacity / i``; when kept, it replaces a uniformly random resident.
    The policy's RNG is its own, seeded at construction, so the keep/drop
    sequence depends only on the publish sequence.
    """

    name = "reservoir"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._offered = 0

    def note_offered(self) -> None:
        self._offered += 1

    def displace(
        self, pending: "deque[StreamedSample]", incoming: StreamedSample
    ) -> StreamedSample | None:
        # note_offered() has already counted `incoming`.
        keep_p = len(pending) / self._offered
        if self._rng.random() >= keep_p:
            return incoming
        victim = int(self._rng.integers(len(pending)))
        displaced = pending[victim]
        del pending[victim]
        return displaced


def resolve_retention(
    policy: "RetentionPolicy | str", seed: int = 0
) -> RetentionPolicy:
    """Resolve a retention policy name (``recency``/``reservoir``) or
    pass an instance through."""
    if isinstance(policy, RetentionPolicy):
        return policy
    if policy == "recency":
        return RecencyRetention()
    if policy == "reservoir":
        return ReservoirRetention(seed=seed)
    raise ValueError(
        f"unknown retention policy {policy!r}; "
        "expected 'recency', 'reservoir', or a RetentionPolicy instance"
    )


class IngestChannel:
    """Bounded sample queue with backpressure and retention.

    Parameters
    ----------
    capacity:
        Maximum pending (published, undrained) samples.
    retention:
        What happens on publish when full — a policy name or instance.
    high_watermark / low_watermark:
        Pause hysteresis as fractions of capacity: :attr:`paused` turns
        on when occupancy reaches ``high_watermark * capacity`` and off
        once draining brings it to ``low_watermark * capacity`` or below.
        Producers honoring :attr:`paused` never trigger retention drops;
        retention is the safety net for producers that do not.
    max_age_s:
        Optional stale bound (simulated seconds): :meth:`evict_stale`
        drops pending samples older than this.
    seed:
        RNG seed for policies that draw (reservoir).
    """

    def __init__(
        self,
        capacity: int,
        retention: "RetentionPolicy | str" = "recency",
        high_watermark: float = 0.9,
        low_watermark: float = 0.5,
        max_age_s: float | None = None,
        seed: int = 0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={low_watermark}, high={high_watermark}"
            )
        if max_age_s is not None and max_age_s <= 0:
            raise ValueError(f"max_age_s must be positive, got {max_age_s}")
        self.capacity = int(capacity)
        self.retention = resolve_retention(retention, seed=seed)
        self.high_watermark = float(high_watermark)
        self.low_watermark = float(low_watermark)
        self.max_age_s = max_age_s
        self._pending: deque[StreamedSample] = deque()
        self._paused = False
        #: Monotonic drain cursor: total samples ever handed to the
        #: consumer.  Checkpoints record it; replays must reproduce it.
        self.cursor = 0
        self.stats = ChannelStats()

    # -- producer side -------------------------------------------------------

    @property
    def depth(self) -> int:
        """Current pending occupancy."""
        return len(self._pending)

    @property
    def paused(self) -> bool:
        """True while the producer should stop publishing (hysteresis)."""
        return self._paused

    @property
    def producer_lag(self) -> int:
        """How far production has run ahead of consumption, in samples
        (includes samples that were lost to retention or staleness)."""
        return self.stats.published - self.stats.drained

    def publish(self, sample: StreamedSample) -> bool:
        """Offer one sample; returns True when it became pending.

        A full channel asks the retention policy to displace something —
        possibly the incoming sample itself, in which case this returns
        False.
        """
        self.stats.published += 1
        if isinstance(self.retention, ReservoirRetention):
            self.retention.note_offered()
        if len(self._pending) >= self.capacity:
            dropped = self.retention.displace(self._pending, sample)
            self.stats.retention_drops += 1
            if dropped is sample:
                self._update_pause()
                return False
        self._pending.append(sample)
        self.stats.accepted += 1
        self._update_pause()
        return True

    # -- consumer side -------------------------------------------------------

    def evict_stale(self, now_s: float) -> int:
        """Drop pending samples older than ``max_age_s`` (no-op without
        one).  Returns how many were evicted."""
        if self.max_age_s is None:
            return 0
        survivors = deque(
            s for s in self._pending if now_s - s.produced_at <= self.max_age_s
        )
        evicted = len(self._pending) - len(survivors)
        self._pending = survivors
        self.stats.stale_evictions += evicted
        self._update_pause()
        return evicted

    def drain(self, max_items: int | None = None) -> list[StreamedSample]:
        """Take up to ``max_items`` pending samples, oldest first."""
        n = len(self._pending) if max_items is None else min(
            max_items, len(self._pending)
        )
        out = [self._pending.popleft() for _ in range(n)]
        self.cursor += n
        self.stats.drained += n
        self._update_pause()
        return out

    def _update_pause(self) -> None:
        depth = len(self._pending)
        if not self._paused and depth >= self.high_watermark * self.capacity:
            self._paused = True
        elif self._paused and depth <= self.low_watermark * self.capacity:
            self._paused = False

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self) -> "Iterable[StreamedSample]":
        return iter(tuple(self._pending))

    def __repr__(self) -> str:
        return (
            f"IngestChannel(depth={self.depth}/{self.capacity}, "
            f"retention={self.retention.name!r}, cursor={self.cursor}, "
            f"paused={self._paused})"
        )

