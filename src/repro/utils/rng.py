"""Deterministic random-number-generator management.

The whole library follows one rule: *randomness flows down, never sideways*.
A single experiment seed produces a :class:`RngFactory`; components ask the
factory for named child generators.  Two runs with the same seed therefore
produce bit-identical results regardless of how many components exist or in
which order they are constructed, because each child stream is derived from
the (path of) names, not from call order.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["RngFactory", "spawn_rngs"]


def _name_to_entropy(name: str) -> int:
    """Map a component name to a stable 128-bit integer.

    Uses BLAKE2b rather than Python's ``hash`` so the mapping is stable
    across interpreter runs and ``PYTHONHASHSEED`` values.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=16).digest()
    return int.from_bytes(digest, "little")


class RngFactory:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed of the experiment.  Any 32/64-bit integer.
    path:
        Dotted path of the component owning this factory (used only for
        diagnostics and for deriving child entropy).

    Examples
    --------
    >>> root = RngFactory(1234)
    >>> a = root.generator("trainer.0")
    >>> b = root.generator("trainer.1")
    >>> float(a.random()) != float(b.random())
    True
    >>> # Same seed, same name => same stream
    >>> a2 = RngFactory(1234).generator("trainer.0")
    >>> float(a2.random()) == float(RngFactory(1234).generator("trainer.0").random())
    True
    """

    def __init__(self, seed: int, path: str = "") -> None:
        self.seed = int(seed)
        self.path = path

    def _child_seed_seq(self, name: str) -> np.random.SeedSequence:
        full = f"{self.path}/{name}" if self.path else name
        return np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_name_to_entropy(full),)
        )

    def generator(self, name: str) -> np.random.Generator:
        """Return the generator for component ``name`` under this factory."""
        return np.random.default_rng(self._child_seq_checked(name))

    def child(self, name: str) -> "RngFactory":
        """Return a sub-factory scoped under ``name``.

        The sub-factory derives streams from the concatenated path, so
        ``root.child("a").generator("b")`` == ``root.generator("a/b")``.
        """
        full = f"{self.path}/{name}" if self.path else name
        return RngFactory(self.seed, full)

    # internal -----------------------------------------------------------
    def _child_seq_checked(self, name: str) -> np.random.SeedSequence:
        if not name:
            raise ValueError("RNG stream name must be a non-empty string")
        return self._child_seed_seq(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngFactory(seed={self.seed}, path={self.path!r})"


def spawn_rngs(seed: int, names: Iterable[str]) -> dict[str, np.random.Generator]:
    """Convenience: build one independent generator per name from one seed."""
    factory = RngFactory(seed)
    return {name: factory.generator(name) for name in names}
