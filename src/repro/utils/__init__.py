"""Shared utilities: deterministic RNG spawning, logging, units, serialization.

Everything in :mod:`repro` that needs randomness receives a
:class:`numpy.random.Generator` (or a :class:`~repro.utils.rng.RngFactory`)
explicitly — there is no hidden global RNG state anywhere in the library,
which is what makes the discrete-event experiments bit-reproducible.
"""

from repro.utils.rng import RngFactory, spawn_rngs
from repro.utils.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    TB,
    format_bytes,
    format_time,
)
from repro.utils.serialization import pack_arrays, unpack_arrays, nbytes_of

__all__ = [
    "RngFactory",
    "spawn_rngs",
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_time",
    "pack_arrays",
    "unpack_arrays",
    "nbytes_of",
]
