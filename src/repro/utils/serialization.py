"""Flat-buffer serialization of named array collections.

LTFB trainers exchange model weights as a single contiguous byte buffer
(the paper exchanges generator weights over MPI point-to-point messages).
These helpers pack an ordered ``{name: ndarray}`` mapping into one buffer
plus a lightweight header, and unpack it losslessly.  The byte size of the
packed form is what the communication cost models charge for.
"""

from __future__ import annotations

import io
from typing import Mapping

import numpy as np

__all__ = ["pack_arrays", "unpack_arrays", "nbytes_of"]


def pack_arrays(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize an ordered mapping of arrays into a single byte string.

    Uses :func:`numpy.savez` under the hood (uncompressed) so dtypes and
    shapes round-trip exactly.  Keys must be non-empty strings.
    """
    for key in arrays:
        if not isinstance(key, str) or not key:
            raise ValueError(f"array keys must be non-empty strings, got {key!r}")
    buf = io.BytesIO()
    # savez mangles keys containing '/'; escape them reversibly.
    escaped = {k.replace("/", "\x1f"): np.asarray(v) for k, v in arrays.items()}
    np.savez(buf, **escaped)
    return buf.getvalue()


def unpack_arrays(payload: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`pack_arrays`."""
    buf = io.BytesIO(payload)
    with np.load(buf, allow_pickle=False) as data:
        return {k.replace("\x1f", "/"): np.array(data[k]) for k in data.files}


def nbytes_of(arrays: Mapping[str, np.ndarray]) -> int:
    """Total payload bytes of a mapping of arrays (excluding headers).

    This is the figure the communication cost models use: header overhead
    is negligible at model-exchange sizes (hundreds of KB to tens of MB).
    """
    return int(sum(np.asarray(a).nbytes for a in arrays.values()))
