"""Byte/time unit constants and human-readable formatting helpers.

Decimal units (KB/MB/GB/TB) are used for link bandwidths and file sizes, to
match how interconnect and storage vendors (and the paper) quote them;
binary units (KiB/MiB/GiB) are used for memory capacities.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_time",
]

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

KIB = 2**10
MIB = 2**20
GIB = 2**30

_DECIMAL_STEPS = [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]


def format_bytes(n: float) -> str:
    """Render a byte count with an appropriate decimal unit.

    >>> format_bytes(2_500_000)
    '2.50 MB'
    >>> format_bytes(512)
    '512 B'
    """
    n = float(n)
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    for step, unit in _DECIMAL_STEPS:
        if n >= step:
            return f"{n / step:.2f} {unit}"
    return f"{n:.0f} B"


def format_time(seconds: float) -> str:
    """Render a duration compactly: us/ms/s/min/h as appropriate.

    >>> format_time(0.00042)
    '420.0 us'
    >>> format_time(7265)
    '2.02 h'
    """
    s = float(seconds)
    if s < 0:
        raise ValueError(f"duration must be non-negative, got {s}")
    if s < 1e-3:
        return f"{s * 1e6:.1f} us"
    if s < 1.0:
        return f"{s * 1e3:.1f} ms"
    if s < 120.0:
        return f"{s:.2f} s"
    if s < 2 * 3600.0:
        return f"{s / 60.0:.1f} min"
    return f"{s / 3600.0:.2f} h"
