"""Convert span traces to Chrome/Perfetto ``trace_event`` JSON.

The JSONL traces :class:`~repro.telemetry.callbacks.JsonlTraceWriter`
produces are the subsystem's interchange format; this module converts
their ``span`` records into the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev render — one horizontal
lane per span *track* (the driver, each ``backend:worker/trainer`` lane,
each prefetch producer), so PR 3's overlap of prefetch fills with trainer
steps is visually inspectable instead of inferred from counters.

Mapping:

- every span becomes one complete event (``"ph": "X"``) with
  microsecond ``ts``/``dur`` on the shared hub timeline; span ids and
  parent ids ride in ``args``;
- every ``health`` event becomes a global instant event (``"ph": "i"``)
  so failures are visible at the moment they were detected;
- every ``resource_sample`` event becomes counter events (``"ph": "C"``)
  — one RSS track and one CPU track per sampled process — so memory
  growth and CPU accumulation render as graphs alongside the span lanes;
- tracks map to thread ids under one synthetic process, named via
  ``thread_name`` metadata and ordered driver-first via
  ``thread_sort_index``.

Exposed on the command line as::

    python -m repro.experiments trace-export trace.jsonl -o trace.json
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.telemetry.events import HEALTH, RESOURCE_SAMPLE, SPAN, TelemetryEvent

__all__ = ["chrome_trace", "export_chrome_trace"]

_PID = 1


def _track_order(tracks: Iterable[str]) -> dict[str, int]:
    """Track name -> tid, driver lanes first, then lexicographic (which
    groups each trainer lane right next to its ``/prefetch`` sibling)."""
    ordered = sorted(set(tracks), key=lambda t: (t != "driver", t))
    return {track: tid for tid, track in enumerate(ordered, start=1)}


def chrome_trace(
    events: Iterable[TelemetryEvent], header: dict | None = None
) -> dict:
    """Build the ``trace_event`` JSON document from loaded trace events.

    ``header`` is the optional ``trace_header`` record of the source
    trace (see :func:`~repro.telemetry.report.load_trace_header`); it is
    carried through under ``otherData`` for provenance.
    """
    spans = [e for e in events if e.type == SPAN]
    health = [e for e in events if e.type == HEALTH]
    samples = [e for e in events if e.type == RESOURCE_SAMPLE]
    tids = _track_order(
        [str(e.payload.get("track", "main")) for e in spans]
        or ["driver"]
    )
    trace_events: list[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "name": "process_name",
            "args": {"name": "repro population run"},
        }
    ]
    for track, tid in tids.items():
        trace_events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    for e in spans:
        p = e.payload
        args = dict(p.get("attrs") or {})
        args["span_id"] = p.get("id")
        if p.get("parent") is not None:
            args["parent_span_id"] = p["parent"]
        trace_events.append(
            {
                "name": str(p.get("name", "span")),
                "cat": str(p.get("cat") or "span"),
                "ph": "X",
                "ts": round(float(p.get("t0_s", 0.0)) * 1e6, 3),
                "dur": round(float(p.get("dur_s", 0.0)) * 1e6, 3),
                "pid": _PID,
                "tid": tids[str(p.get("track", "main"))],
                "args": args,
            }
        )
    for e in health:
        p = e.payload
        trace_events.append(
            {
                "name": f"health:{p.get('kind', 'warning')}",
                "cat": "health",
                "ph": "i",
                "s": "g",  # global instant: draw across every lane
                "ts": round(float(e.time_s) * 1e6, 3),
                "pid": _PID,
                "args": {
                    "message": p.get("message"),
                    "severity": p.get("severity"),
                    "trainer": p.get("trainer"),
                },
            }
        )
    for e in samples:
        p = e.payload
        source = str(p.get("source", "process"))
        ts = round(float(e.time_s) * 1e6, 3)
        trace_events.append(
            {
                "name": f"rss[{source}]",
                "cat": "resources",
                "ph": "C",
                "ts": ts,
                "pid": _PID,
                "args": {
                    "rss_mb": round(float(p.get("rss_bytes", 0)) / 1e6, 3),
                    "peak_mb": round(
                        float(p.get("peak_rss_bytes", 0)) / 1e6, 3
                    ),
                },
            }
        )
        trace_events.append(
            {
                "name": f"cpu[{source}]",
                "cat": "resources",
                "ph": "C",
                "ts": ts,
                "pid": _PID,
                "args": {
                    "user_s": round(float(p.get("cpu_user_s", 0.0)), 3),
                    "system_s": round(float(p.get("cpu_system_s", 0.0)), 3),
                },
            }
        )
    doc: dict = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if header:
        doc["otherData"] = {
            k: v for k, v in header.items() if k != "type"
        }
    return doc


def export_chrome_trace(trace_path, out_path) -> dict:
    """Load a JSONL trace, convert, and write Chrome trace JSON.

    Returns the document (so callers can report span/track counts).
    Raises ``ValueError`` when the trace contains no spans — the source
    run was not traced (pass a spans-enabled ``JsonlTraceWriter`` /
    ``--trace-out``).
    """
    from repro.telemetry.report import load_trace, load_trace_header

    events = load_trace(trace_path)
    header = load_trace_header(trace_path)
    if not any(e.type == SPAN for e in events):
        raise ValueError(
            f"{trace_path}: no span records; the run was not traced "
            "(enable spans on the JsonlTraceWriter or use --trace-out)"
        )
    doc = chrome_trace(events, header)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc
