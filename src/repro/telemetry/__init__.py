"""Telemetry: the event-bus + callback observability layer.

Modeled on LBANN's callback architecture.  Instrumented components — the
population drivers, :class:`~repro.core.trainer.Trainer`,
:class:`~repro.datastore.store.DistributedDataStore`, and
:mod:`repro.core.checkpoint` — emit typed events into a
:class:`TelemetryHub`; :class:`Callback` subscribers consume them.

Shipped callbacks:

- :class:`JsonlTraceWriter` — one JSON object per event to a trace file;
- :class:`WallClockTimer` — per-phase timings (train/tournament/exchange/eval);
- :class:`CounterAggregator` — exchange bytes, adoption rate, datastore
  local/remote fetch counters, checkpoint traffic;
- :class:`ProgressLogger` — one line per round.

Typical use::

    from repro.telemetry import JsonlTraceWriter, WallClockTimer

    timer = WallClockTimer()
    history = driver.run(callbacks=[JsonlTraceWriter("trace.jsonl"), timer])
    print(timer.summary())

and afterwards ``python -m repro.experiments trace-report trace.jsonl``.
"""

from repro.telemetry.callbacks import (
    Callback,
    CounterAggregator,
    JsonlTraceWriter,
    ProgressLogger,
    WallClockTimer,
)
from repro.telemetry.events import (
    CHECKPOINT,
    DATASTORE_FETCH,
    EVAL,
    EVENT_TYPES,
    EXCHANGE,
    FETCH_STALL,
    PREFETCH_FILL,
    ROUND_END,
    STEP_END,
    TOURNAMENT,
    TelemetryEvent,
    TelemetryHub,
)
from repro.telemetry.report import load_trace, render_trace_report, summarize_trace

__all__ = [
    "TelemetryEvent",
    "TelemetryHub",
    "EVENT_TYPES",
    "STEP_END",
    "ROUND_END",
    "TOURNAMENT",
    "EXCHANGE",
    "EVAL",
    "DATASTORE_FETCH",
    "FETCH_STALL",
    "PREFETCH_FILL",
    "CHECKPOINT",
    "Callback",
    "JsonlTraceWriter",
    "WallClockTimer",
    "CounterAggregator",
    "ProgressLogger",
    "load_trace",
    "summarize_trace",
    "render_trace_report",
]
