"""Telemetry: the event-bus + callback observability layer.

Modeled on LBANN's callback architecture.  Instrumented components — the
population drivers, :class:`~repro.core.trainer.Trainer`,
:class:`~repro.datastore.store.DistributedDataStore`, and
:mod:`repro.core.checkpoint` — emit typed events into a
:class:`TelemetryHub`; :class:`Callback` subscribers consume them.

Shipped callbacks:

- :class:`JsonlTraceWriter` — one JSON object per event to a trace file
  (versioned header first; pass ``spans=True`` to enable span tracing);
- :class:`WallClockTimer` — per-phase timings (train/tournament/exchange/eval);
- :class:`CounterAggregator` — exchange bytes, adoption rate, datastore
  local/remote fetch counters, checkpoint traffic;
- :class:`ProgressLogger` — one line per round (plus in-line health
  warnings);
- :class:`MetricsCollector` — counters/gauges/histograms with p50/p95/p99
  summaries, exportable as JSON or Prometheus text;
- :class:`HealthMonitor` — NaN/divergence, win-rate collapse, and
  stall-regression detection into ``History.health_warnings``;
- :class:`ResourceSampler` — periodic peak-RSS/CPU readings of the driver
  process as ``resource_sample`` events (execution backends add worker
  samples), surfaced in ``trace-report``, metrics gauges, and Perfetto
  counter tracks;
- :class:`LiveAggregator` / :class:`FlightRecorder` — the live
  observability plane (:mod:`repro.telemetry.live`): windowed rollups
  with anomaly alerts fed into ``History.health_warnings`` *during* the
  run, and a bounded ring of recent events dumped as a post-mortem
  bundle on crash/critical alert/SIGTERM.  ``python -m repro.telemetry
  watch`` renders the live status surface from a trace.

Profiling spans (:mod:`repro.telemetry.spans`) ride the same bus as
``span`` events when tracing is enabled
(:meth:`TelemetryHub.start_tracing`, requested by any callback with
``wants_spans=True``); ``trace-export`` converts them to Chrome/Perfetto
JSON.

Typical use::

    from repro.telemetry import (HealthMonitor, JsonlTraceWriter,
                                 MetricsCollector, WallClockTimer)

    timer, metrics = WallClockTimer(), MetricsCollector()
    history = driver.run(callbacks=[
        JsonlTraceWriter("trace.jsonl", spans=True), timer, metrics,
        HealthMonitor(),
    ])
    print(timer.summary())
    print(metrics.registry.render_prometheus())

and afterwards ``python -m repro.experiments trace-report trace.jsonl``
/ ``trace-export trace.jsonl -o trace.json``.
"""

from repro.telemetry.callbacks import (
    Callback,
    CounterAggregator,
    JsonlTraceWriter,
    ProgressLogger,
    WallClockTimer,
)
from repro.telemetry.events import (
    ALERT,
    CHECKPOINT,
    DATASTORE_FETCH,
    EVAL,
    EVENT_TYPES,
    EXCHANGE,
    FETCH_STALL,
    HEALTH,
    PREFETCH_FILL,
    RESOURCE_SAMPLE,
    ROUND_END,
    SERVE,
    SPAN,
    STEP_END,
    TOURNAMENT,
    TelemetryEvent,
    TelemetryHub,
)
from repro.telemetry.export import chrome_trace, export_chrome_trace
from repro.telemetry.health import HealthMonitor, HealthWarning
from repro.telemetry.live import (
    Alert,
    AlertEngine,
    EwmaDetector,
    FlightRecorder,
    LiveAggregator,
    RollingWindow,
    load_bundle,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    collect_metrics,
    render_metrics,
    write_metrics,
)
from repro.telemetry.report import (
    load_trace,
    load_trace_header,
    render_trace_report,
    summarize_trace,
    trace_summary,
)
from repro.telemetry.resources import (
    ResourceSampler,
    emit_resource_sample,
    sample_resources,
    summarize_resources,
)
from repro.telemetry.spans import Span, Tracer

__all__ = [
    "TelemetryEvent",
    "TelemetryHub",
    "EVENT_TYPES",
    "STEP_END",
    "ROUND_END",
    "TOURNAMENT",
    "EXCHANGE",
    "EVAL",
    "DATASTORE_FETCH",
    "FETCH_STALL",
    "PREFETCH_FILL",
    "CHECKPOINT",
    "SPAN",
    "HEALTH",
    "ALERT",
    "SERVE",
    "RESOURCE_SAMPLE",
    "Callback",
    "JsonlTraceWriter",
    "WallClockTimer",
    "CounterAggregator",
    "ProgressLogger",
    "Tracer",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsCollector",
    "collect_metrics",
    "render_metrics",
    "write_metrics",
    "HealthMonitor",
    "HealthWarning",
    "RollingWindow",
    "EwmaDetector",
    "Alert",
    "AlertEngine",
    "LiveAggregator",
    "FlightRecorder",
    "load_bundle",
    "ResourceSampler",
    "sample_resources",
    "emit_resource_sample",
    "summarize_resources",
    "chrome_trace",
    "export_chrome_trace",
    "load_trace",
    "load_trace_header",
    "summarize_trace",
    "render_trace_report",
    "trace_summary",
]
