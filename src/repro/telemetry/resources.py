"""Process-resource sampling: peak RSS and CPU time as telemetry.

The paper's throughput claims are only credible next to a resource
account — the data store's whole premise is trading node memory for
file-system pressure, so a perf trajectory (``repro.bench``) without
memory/CPU numbers can "improve" by silently ballooning its footprint.
This module closes that gap with one cheap primitive and one callback:

- :func:`sample_resources` — a point-in-time reading of the calling
  process: current RSS (``/proc/self/statm`` where available), lifetime
  peak RSS (``getrusage``), and split user/system CPU seconds.  Costs two
  syscalls; safe to call per round.
- :class:`ResourceSampler` — a :class:`~repro.telemetry.callbacks.
  Callback` that emits a :data:`~repro.telemetry.events.RESOURCE_SAMPLE`
  event at run begin, after every ``every_rounds``-th round, and at run
  end.  Attach it alongside a :class:`~repro.telemetry.metrics.
  MetricsCollector` and the samples land as gauges in the registry; write
  the trace and they surface as a resources section in ``trace-report``
  and counter tracks in the Perfetto export.

Execution backends emit the same event from wherever trainer work runs:
the serial and thread backends sample the driver process once per train
phase, and each process-backend worker samples *itself* per train command
— buffered and relayed to the driver's hub exactly like spans, so a
multi-process run reports one resource series per worker process.

On platforms without the ``resource`` module (Windows) sampling degrades
to CPU-only via ``os.times``; all byte fields read zero.
"""

from __future__ import annotations

import os
import sys
from typing import Mapping

from repro.telemetry.callbacks import Callback
from repro.telemetry.events import RESOURCE_SAMPLE

try:  # unix only; gate rather than require
    import resource as _resource
except ImportError:  # pragma: no cover - windows
    _resource = None

__all__ = [
    "sample_resources",
    "emit_resource_sample",
    "summarize_resources",
    "ResourceSampler",
]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def _current_rss_bytes() -> int:
    """Resident set size right now, 0 when the platform hides it."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return 0


def sample_resources() -> dict:
    """One point-in-time resource reading of the calling process.

    Returns ``rss_bytes`` (current resident set; 0 where unreadable),
    ``peak_rss_bytes`` (lifetime high-water mark), and ``cpu_user_s`` /
    ``cpu_system_s`` (cumulative CPU seconds).
    """
    if _resource is not None:
        ru = _resource.getrusage(_resource.RUSAGE_SELF)
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        peak = int(ru.ru_maxrss) if sys.platform == "darwin" else int(ru.ru_maxrss) * 1024
        user_s, system_s = float(ru.ru_utime), float(ru.ru_stime)
    else:  # pragma: no cover - windows
        times = os.times()
        peak, user_s, system_s = 0, float(times.user), float(times.system)
    rss = _current_rss_bytes() or peak
    return {
        "rss_bytes": rss,
        "peak_rss_bytes": peak,
        "cpu_user_s": user_s,
        "cpu_system_s": system_s,
    }


def emit_resource_sample(sink, *, source: str, **context) -> None:
    """Sample this process and emit one ``resource_sample`` into ``sink``.

    ``sink`` is anything with ``emit(type, /, **payload)`` — a
    :class:`~repro.telemetry.events.TelemetryHub` or an
    :class:`~repro.exec.base.EventRecorder`; ``None`` (and a hub with no
    subscribers) costs nothing.  ``source`` names the sampled process's
    role (``"driver"``, ``"worker0"``, ...); extra ``context`` (backend,
    worker index) rides in the payload.
    """
    if sink is None:
        return
    if getattr(sink, "active", True) is False:
        return  # hub with no subscribers: skip the syscalls too
    sink.emit(RESOURCE_SAMPLE, source=source, **context, **sample_resources())


def summarize_resources(events) -> dict[str, dict]:
    """Fold ``resource_sample`` events into one summary row per source.

    Returns ``{source: {samples, rss_bytes, peak_rss_bytes, cpu_user_s,
    cpu_system_s}}`` where byte fields are maxima over the source's
    samples and CPU fields are the last (cumulative) reading.
    """
    out: dict[str, dict] = {}
    for event in events:
        if event.type != RESOURCE_SAMPLE:
            continue
        p: Mapping = event.payload
        source = str(p.get("source", "process"))
        row = out.setdefault(
            source,
            {
                "samples": 0,
                "rss_bytes": 0,
                "peak_rss_bytes": 0,
                "cpu_user_s": 0.0,
                "cpu_system_s": 0.0,
            },
        )
        row["samples"] += 1
        row["rss_bytes"] = max(row["rss_bytes"], int(p.get("rss_bytes", 0)))
        row["peak_rss_bytes"] = max(
            row["peak_rss_bytes"], int(p.get("peak_rss_bytes", 0))
        )
        row["cpu_user_s"] = float(p.get("cpu_user_s", row["cpu_user_s"]))
        row["cpu_system_s"] = float(p.get("cpu_system_s", row["cpu_system_s"]))
    return out


class ResourceSampler(Callback):
    """Periodically samples the driver process during a run.

    Emits one ``resource_sample`` event (source ``"driver"``) at run
    begin, after every ``every_rounds``-th ``round_end``, and at run end.
    Worker-process samples are the execution backend's job (see module
    docstring); this callback only covers the process the driver loop
    runs in.
    """

    def __init__(self, every_rounds: int = 1) -> None:
        if every_rounds < 1:
            raise ValueError(f"every_rounds must be >= 1, got {every_rounds}")
        self.every_rounds = int(every_rounds)
        self._hub = None
        self._rounds_seen = 0

    def _sample(self) -> None:
        # Re-entrant emit: the hub's dispatch lock is an RLock precisely
        # so callbacks may emit (the new event dispatches immediately,
        # nested inside the triggering one).
        emit_resource_sample(self._hub, source="driver")

    def on_run_begin(self, driver) -> None:
        self._hub = driver.telemetry
        self._rounds_seen = 0
        self._sample()

    def on_round_end(self, event) -> None:
        self._rounds_seen += 1
        if self._rounds_seen % self.every_rounds == 0:
            self._sample()

    def on_run_end(self, driver, history) -> None:
        self._sample()
        self._hub = None
