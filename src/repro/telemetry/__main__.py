"""``python -m repro.telemetry`` — the live terminal status surface.

``watch`` tails a JSONL telemetry trace (being written by a running
campaign, or already finished), folds every event through the same
:class:`~repro.telemetry.live.LiveAggregator` the in-process live plane
uses, and renders a refreshing snapshot: per-trainer round progress, the
last topology pairing, ingest watermarks, serve SLO burn, the last
quality-probe divergence readings, and the alert feed.  Because it replays the *trace*, it needs no connection to the run
— ``--follow`` polls the file for new lines, a plain invocation renders
the final state once.

::

    python -m repro.telemetry watch out/trace.jsonl            # snapshot
    python -m repro.telemetry watch out/trace.jsonl --follow   # live tail
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.telemetry.events import EVENT_TYPES, TelemetryEvent
from repro.telemetry.live import LiveAggregator
from repro.utils.units import format_bytes

__all__ = ["watch_snapshot", "render_watch", "main"]


class _TraceTail:
    """Incremental JSONL trace reader: each :meth:`poll` yields the
    events appended since the last one.  Tolerates a half-written final
    line (the writer may be mid-append) by re-reading it next poll."""

    def __init__(self, path) -> None:
        self.path = path
        self._offset = 0
        self.header: dict | None = None
        self._first = True

    def poll(self) -> list[TelemetryEvent]:
        events: list[TelemetryEvent] = []
        try:
            fh = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return events
        with fh:
            fh.seek(self._offset)
            while True:
                line_start = fh.tell()
                line = fh.readline()
                if not line:
                    break
                if not line.endswith("\n"):
                    # Incomplete tail line: leave it for the next poll.
                    fh.seek(line_start)
                    break
                self._offset = fh.tell()
                text = line.strip()
                if not text:
                    continue
                try:
                    record = json.loads(text)
                except json.JSONDecodeError:
                    continue  # torn write mid-line; skip defensively
                rtype = record.pop("type", None)
                if rtype == "trace_header" and self._first:
                    self.header = record
                    self._first = False
                    continue
                self._first = False
                if rtype not in EVENT_TYPES:
                    continue
                events.append(
                    TelemetryEvent(
                        type=rtype,
                        time_s=float(record.pop("time_s", 0.0)),
                        sequence=int(record.pop("sequence", 0)),
                        payload=record,
                    )
                )
        return events


def watch_snapshot(path, aggregator: LiveAggregator | None = None) -> dict:
    """Fold a whole trace into a live snapshot (the one-shot path)."""
    aggregator = aggregator if aggregator is not None else LiveAggregator()
    tail = _TraceTail(path)
    for event in tail.poll():
        aggregator.handle(event)
    snap = aggregator.snapshot()
    snap["header"] = tail.header
    return snap


def _bar(fraction: float, width: int = 24) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def render_watch(snap: dict, path=None) -> str:
    """The terminal rendering of one live snapshot."""
    out: list[str] = []
    title = f"== live status{f': {path}' if path else ''} =="
    out.append(title)
    header = snap.get("header") or {}
    run = header.get("run") or {}
    if run:
        bits = []
        if run.get("driver"):
            bits.append(str(run["driver"]))
        if run.get("backend"):
            bits.append(
                f"backend {run['backend']}"
                + (f" x{run['workers']}" if run.get("workers") else "")
            )
        if run.get("population"):
            bits.append(f"{len(run['population'])} trainers")
        out.append("run: " + ", ".join(bits))
    rounds_total = snap.get("rounds_total") or run.get("rounds")
    round_index = snap.get("round")
    if round_index is not None:
        done = round_index + 1
        if rounds_total:
            out.append(
                f"round: {done}/{rounds_total}  "
                f"[{_bar(done / rounds_total)}]"
            )
        else:
            out.append(f"round: {done}")
    trainers = snap.get("trainers") or {}
    if trainers:
        out.append("trainers:")
        for name in sorted(trainers):
            state = trainers[name]
            loss_bits = ", ".join(
                f"{k} {v:.4g}" for k, v in (state.get("losses") or {}).items()
            )
            step = state.get("last_step_s")
            out.append(
                f"  {name}: {state.get('steps_done', 0)} steps"
                + (f", {step * 1e3:.1f}ms/step" if step is not None else "")
                + (f"  ({loss_bits})" if loss_bits else "")
            )
    pairing = snap.get("pairing")
    if pairing:
        pairs = " ".join(
            f"{a}<->{b}" for a, b in (pairing.get("pairs") or [])
        )
        bye = pairing.get("bye") or []
        out.append(
            f"pairing[{pairing.get('topology')}] round "
            f"{pairing.get('round')}: {pairs or '(none)'}"
            + (f"  bye: {', '.join(bye)}" if bye else "")
        )
    ingest = snap.get("ingest")
    if ingest:
        rates = snap.get("rates") or {}
        occupancy = ingest.get("channel_occupancy")
        out.append(
            f"ingest: universe {ingest.get('universe_size')} "
            f"(v{ingest.get('universe_version')}), "
            f"admit {rates.get('ingest_admitted_per_s', 0.0):.1f}/s, "
            f"evict {rates.get('ingest_evicted_per_s', 0.0):.1f}/s, "
            f"lag {ingest.get('producer_lag')}"
        )
        if occupancy is not None:
            out.append(
                f"  channel: [{_bar(float(occupancy))}] "
                f"{float(occupancy):.0%}"
                + ("  PAUSED (high watermark)" if ingest.get("paused") else "")
            )
    serve = snap.get("serve")
    if serve:
        latency = serve.get("latency") or {}
        line = f"serve: queue depth {serve.get('queue_depth')}"
        if latency:
            line += (
                f", latency p50 {latency['p50'] * 1e3:.2f}ms "
                f"p95 {latency['p95'] * 1e3:.2f}ms "
                f"p99 {latency['p99'] * 1e3:.2f}ms"
            )
        out.append(line)
        if serve.get("slo_s") is not None and serve.get("slo_burn") is not None:
            out.append(
                f"  SLO {serve['slo_s'] * 1e3:.1f}ms: burn "
                f"[{_bar(serve['slo_burn'])}] {serve['slo_burn']:.0%}"
            )
    quality = snap.get("quality")
    if quality:
        metric = quality.get("metric", "js")
        divergence = quality.get("divergence") or {}
        bits = []
        for name in sorted(divergence):
            value = (divergence[name] or {}).get(metric)
            if value is not None:
                bits.append(f"{name} {float(value):.3g}")
        out.append(
            f"quality[{metric}] round {quality.get('round')}: "
            + (", ".join(bits) if bits else "(no readings)")
        )
    windows = snap.get("windows") or {}
    rows = [
        ("step time", "step_time_s", 1e3, "ms"),
        ("fetch stall", "fetch_stall_s", 1e3, "ms"),
        ("round train", "round_train_s", 1.0, "s"),
        ("divergence", "eval_divergence", 1.0, ""),
    ]
    window_lines = []
    for label, key, scale, unit in rows:
        w = windows.get(key)
        if not w or not w.get("count"):
            continue
        window_lines.append(
            f"  {label}: n={w['count']} mean={w['mean'] * scale:.3g}{unit} "
            f"p95={w['p95'] * scale:.3g}{unit} last={w['last'] * scale:.3g}{unit}"
        )
    w = windows.get("exchange_bytes")
    if w and w.get("count"):
        window_lines.append(
            f"  exchange: n={w['count']} mean={format_bytes(int(w['mean']))}"
        )
    if window_lines:
        out.append("windows:")
        out.extend(window_lines)
    alerts = snap.get("alerts") or {}
    recent = alerts.get("recent") or []
    if recent:
        out.append(
            f"alerts: {alerts.get('count', 0)} "
            f"({alerts.get('critical', 0)} critical)"
        )
        for a in recent[-8:]:
            where = f" {a.get('trainer')}" if a.get("trainer") else ""
            out.append(
                f"  [{a.get('severity')}] {a.get('source')}/{a.get('kind')}"
                f"{where}: {a.get('message')}"
            )
    else:
        out.append("alerts: none")
    return "\n".join(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="live telemetry tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    watch = sub.add_parser(
        "watch", help="render a live status snapshot from a JSONL trace"
    )
    watch.add_argument("trace", help="trace path (may still be growing)")
    watch.add_argument(
        "--follow",
        action="store_true",
        help="keep polling the trace and re-rendering until interrupted",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh period in seconds under --follow",
    )
    watch.add_argument(
        "--max-refreshes",
        type=int,
        default=None,
        help="stop --follow after N renders (default: until Ctrl-C)",
    )
    watch.add_argument(
        "--json",
        action="store_true",
        help="print the snapshot as JSON instead of the terminal rendering",
    )
    args = parser.parse_args(argv)

    aggregator = LiveAggregator()
    tail = _TraceTail(args.trace)

    def render_once() -> None:
        for event in tail.poll():
            aggregator.handle(event)
        snap = aggregator.snapshot()
        snap["header"] = tail.header
        if args.json:
            print(json.dumps(snap, indent=2))
        else:
            print(render_watch(snap, path=args.trace))

    if not args.follow:
        render_once()
        return 0
    refreshes = 0
    try:
        while True:
            # ANSI clear + home keeps the snapshot in place like top(1).
            sys.stdout.write("\x1b[2J\x1b[H")
            render_once()
            sys.stdout.flush()
            refreshes += 1
            if (
                args.max_refreshes is not None
                and refreshes >= args.max_refreshes
            ):
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
