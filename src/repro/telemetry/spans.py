"""Hierarchical span tracing over the telemetry event bus.

A *span* is one timed interval of work — a run, a round, a phase, one
trainer step, one store fetch, one background prefetch fill — carrying a
unique id, an optional parent id, and a *track* (the timeline it renders
on: the driver, a ``backend:worker/trainer`` lane, or that lane's
``/prefetch`` sibling).  Spans are ordinary telemetry events of type
:data:`~repro.telemetry.events.SPAN`, so they flow through the existing
machinery unchanged: hubs dispatch them, :class:`~repro.telemetry.
callbacks.JsonlTraceWriter` persists them, :class:`~repro.exec.base.
EventRecorder` buffers them across thread/process boundaries, and
``trace-export`` converts them to Chrome/Perfetto ``trace_event`` JSON.

Design constraints:

- **Off by default, free when off.**  Instrumented components fetch
  ``tracer = getattr(self.telemetry, "tracer", None)`` and take a plain
  branch when it is ``None``; no span objects, no clock reads.  A driver
  enables tracing only when an attached callback declares
  ``wants_spans = True`` (see :meth:`~repro.telemetry.events.TelemetryHub.
  start_tracing`).
- **One timeline across processes.**  Span timestamps (``t0_s``) are
  seconds since the tracer's *epoch* on the monotonic clock.  Each tracer
  also remembers the wall-clock time of its epoch (``wall_origin``);
  process workers report theirs with each reply, and the driver shifts
  relayed span timestamps by the wall-clock offset so cross-process
  timelines line up (monotonic clocks are per-process and unalignable
  directly; wall clocks agree to well under typical span durations on one
  host).
- **Parents are per thread.**  Each thread keeps its own stack of open
  spans; a new span's parent is the innermost open span *on that thread*,
  and its track defaults to the parent's (or ``"main"`` at top level).
  Background threads (prefetch producers) therefore get parentless spans
  on their own track instead of accidentally nesting under the consumer.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Mapping

from repro.telemetry.events import SPAN

__all__ = ["Tracer", "Span"]

#: Process-wide span-id counter; combined with the pid so ids stay unique
#: when process workers relay spans into the driver's trace.
_ids = itertools.count(1)


def _new_span_id() -> str:
    return f"{os.getpid():x}.{next(_ids)}"


class Span:
    """One open span: a context manager that emits on exit.

    Created via :meth:`Tracer.span`; ``attrs`` stays mutable while the
    span is open, so code can annotate outcomes discovered mid-span::

        with tracer.span("store_fetch", cat="data") as sp:
            batch = fetch()
            sp.attrs["remote_fetches"] = ...
    """

    __slots__ = ("tracer", "name", "cat", "track", "attrs", "id", "parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, track, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.attrs = attrs
        self.id: str | None = None
        self.parent: str | None = None
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        parent = stack[-1] if stack else None
        if self.track is None:
            self.track = parent.track if parent is not None else "main"
        self.parent = parent.id if parent is not None else None
        self.id = _new_span_id()
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        end = time.perf_counter()
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer._emit(
            self.name, self.cat, self.track, self._t0, end, self.parent,
            self.id, self.attrs,
        )


class Tracer:
    """Produces hierarchical spans into a telemetry sink.

    Parameters
    ----------
    sink:
        Anything with ``emit(type, /, **payload)`` — a
        :class:`~repro.telemetry.events.TelemetryHub` or an
        :class:`~repro.exec.base.EventRecorder`.  May be swapped (process
        workers point one persistent tracer at a fresh recorder per train
        command) or ``None`` (spans are timed but dropped).
    epoch:
        The ``time.perf_counter()`` instant that is ``t0_s == 0``;
        defaults to now.  Hubs pass their own creation instant so span
        timestamps share the axis of ``TelemetryEvent.time_s``.
    wall_origin:
        The wall-clock (``time.time()``) reading at ``epoch``, used for
        cross-process alignment; derived automatically when omitted.
    """

    def __init__(self, sink, epoch: float | None = None,
                 wall_origin: float | None = None) -> None:
        self.sink = sink
        now_perf, now_wall = time.perf_counter(), time.time()
        self.epoch = now_perf if epoch is None else float(epoch)
        if wall_origin is None:
            wall_origin = now_wall - (now_perf - self.epoch)
        self.wall_origin = float(wall_origin)
        self._local = threading.local()

    # -- span creation -------------------------------------------------------

    def span(self, name: str, cat: str = "", track: str | None = None,
             **attrs) -> Span:
        """Open a span as a context manager.

        ``track=None`` inherits the innermost enclosing span's track on
        this thread (``"main"`` at top level); pass an explicit track to
        start a new timeline lane (per-trainer, per-worker, ...).
        """
        return Span(self, name, cat, track, attrs)

    def record(self, name: str, cat: str = "", track: str | None = None,
               t0: float = 0.0, end: float = 0.0, **attrs) -> None:
        """Emit a span from already-measured ``time.perf_counter()`` values.

        For call sites that time an interval anyway (pipelines, exchange
        accounting): no extra clock reads, no stack manipulation.  The
        parent is the innermost open span on this thread, if any.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        if track is None:
            track = parent.track if parent is not None else "main"
        self._emit(name, cat, track, t0, end,
                   parent.id if parent is not None else None,
                   _new_span_id(), attrs)

    def child(self, sink) -> "Tracer":
        """A tracer over another sink sharing this tracer's clock origin
        (same-process relay: thread-backend recorders)."""
        return Tracer(sink, epoch=self.epoch, wall_origin=self.wall_origin)

    # -- internals -----------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, name, cat, track, t0, end, parent, span_id,
              attrs: Mapping) -> None:
        sink = self.sink
        if sink is None:
            return
        payload = {
            "name": name,
            "cat": cat,
            "track": track,
            "t0_s": round(t0 - self.epoch, 9),
            "dur_s": round(max(0.0, end - t0), 9),
            "id": span_id,
        }
        if parent is not None:
            payload["parent"] = parent
        if attrs:
            payload["attrs"] = dict(attrs)
        sink.emit(SPAN, **payload)

    def __repr__(self) -> str:
        return f"Tracer(sink={type(self.sink).__name__ if self.sink else None})"
