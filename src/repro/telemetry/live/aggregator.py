"""The live aggregation callback: windows + detectors + alert routing.

:class:`LiveAggregator` subscribes to a :class:`~repro.telemetry.events.
TelemetryHub` like any other callback, but instead of archiving events it
folds them into bounded :class:`~repro.telemetry.live.windows.
RollingWindow` rollups (step time, fetch stall, exchange bytes, ingest
admit/evict rates, channel occupancy, serve queue depth and latency) and
runs streaming anomaly detectors over them.  Detections route through an
:class:`~repro.telemetry.live.alerts.AlertEngine` (dedup + cooldown);
admitted alerts are

- re-emitted as first-class ``alert`` telemetry events (so traces keep
  them and the watch CLI can replay them),
- appended to ``History.health_warnings`` *at fire time* — a failing run
  is flagged while it is still running, not at ``on_run_end``.

The whole thing is O(window) memory regardless of run length, which is
what lets it sit on a streamed campaign that never ends.
"""

from __future__ import annotations

import math

from repro.telemetry.callbacks import Callback
from repro.telemetry.events import ALERT, TelemetryEvent
from repro.telemetry.health import HealthWarning
from repro.telemetry.live.alerts import Alert, AlertEngine
from repro.telemetry.live.windows import EwmaDetector, RollingWindow

__all__ = ["LiveAggregator"]

#: The windowed series the aggregator maintains (name -> what it holds).
WINDOW_SERIES = (
    "step_time_s",        # per-interval mean step seconds
    "fetch_stall_s",      # consumer wait per delivered batch
    "exchange_bytes",     # bytes per pairwise model exchange
    "ingest_admitted",    # samples admitted per poll
    "ingest_evicted",     # samples evicted per poll
    "channel_occupancy",  # ingest channel depth / capacity
    "serve_queue_depth",  # request queue depth per micro-batch
    "serve_latency_s",    # mean queue wait + forward per micro-batch
    "round_train_s",      # train-phase seconds per round
    "eval_divergence",    # probed divergence per (round, trainer)
)


def _mean_loss(losses: dict | None) -> float | None:
    """Mean of a trainer's finite loss terms, or ``None``."""
    if not losses:
        return None
    finite = [float(v) for v in losses.values() if math.isfinite(float(v))]
    if not finite:
        return None
    return sum(finite) / len(finite)


class LiveAggregator(Callback):
    """Streaming rollups and anomaly alerts over a live event stream.

    Parameters
    ----------
    window:
        Ring-buffer length of every rollup series.
    z_threshold / alpha / detector_warmup:
        EWMA z-score detector configuration (shared by the step-time and
        fetch-stall detectors).
    stall_fraction_threshold / warmup_rounds:
        Round-level stall-regression gate, mirroring
        :class:`~repro.telemetry.health.HealthMonitor` semantics: flag a
        post-warmup round whose summed fetch stall exceeds the fraction
        of its train phase.
    serve_slo_s / slo_burn_threshold / slo_min_samples:
        Serving SLO: alert when more than ``slo_burn_threshold`` of the
        windowed micro-batch latencies exceed ``serve_slo_s`` (once at
        least ``slo_min_samples`` batches are in the window).
    cooldown_rounds:
        Alert-engine cooldown (see :class:`~repro.telemetry.live.alerts.
        AlertEngine`).
    """

    def __init__(
        self,
        window: int = 256,
        z_threshold: float = 4.0,
        alpha: float = 0.25,
        detector_warmup: int = 8,
        stall_fraction_threshold: float = 0.5,
        warmup_rounds: int = 1,
        serve_slo_s: float | None = None,
        slo_burn_threshold: float = 0.5,
        slo_min_samples: int = 8,
        cooldown_rounds: int = 5,
    ) -> None:
        self.windows: dict[str, RollingWindow] = {
            name: RollingWindow(window) for name in WINDOW_SERIES
        }
        self._detector_cfg = dict(
            alpha=alpha, z_threshold=z_threshold, warmup=detector_warmup
        )
        # One detector per (series, trainer-or-None): a slow trainer must
        # not inflate the baseline its healthy peers are judged against.
        self._detectors: dict[tuple[str, str | None], EwmaDetector] = {}
        self.stall_fraction_threshold = float(stall_fraction_threshold)
        self.warmup_rounds = int(warmup_rounds)
        self.serve_slo_s = serve_slo_s
        self.slo_burn_threshold = float(slo_burn_threshold)
        self.slo_min_samples = int(slo_min_samples)
        self.engine = AlertEngine(cooldown_rounds=cooldown_rounds)
        # Live state the snapshot renders.
        self.round_index: int | None = None
        self.rounds_total: int | None = None
        self.trainers: dict[str, dict] = {}
        self.last_pairing: dict | None = None
        self.last_ingest: dict | None = None
        self.last_serve: dict | None = None
        self.last_quality: dict | None = None
        self.adoptions = 0
        self.tournaments = 0
        self.health_events = 0
        self._round_stall_s = 0.0
        # Quality-collapse context: best probed divergence per trainer
        # and the mean loss recorded when that floor was set, so a
        # detection can say whether the loss still looked healthy.
        self._div_floor: dict[str, float] = {}
        self._loss_at_floor: dict[str, float | None] = {}
        self._hub = None
        self._history = None

    # -- lifecycle -----------------------------------------------------------

    def on_run_begin(self, driver) -> None:
        self._hub = driver.telemetry
        self._history = driver.history
        self.rounds_total = getattr(driver.config, "rounds", None)
        for t in driver.trainers:
            self.trainers.setdefault(t.name, {"steps_done": t.steps_done})

    def on_run_end(self, driver, history) -> None:
        self._hub = None
        self._history = None

    def attach(self, hub, history=None) -> "LiveAggregator":
        """Wire the emit/warning sinks outside a driver run (the serve
        path has no driver, so nothing calls ``on_run_begin``)."""
        self._hub = hub
        self._history = history
        return self

    # -- detection plumbing --------------------------------------------------

    def _detector(self, series: str, trainer: str | None) -> EwmaDetector:
        key = (series, trainer)
        det = self._detectors.get(key)
        if det is None:
            det = self._detectors[key] = EwmaDetector(**self._detector_cfg)
        return det

    def _fire(self, alert: Alert, emit: bool = True) -> bool:
        """Route one detection: engine admission, then the live sinks."""
        if not self.engine.fire(alert):
            return False
        if self._history is not None and hasattr(
            self._history, "health_warnings"
        ):
            self._history.health_warnings.append(
                HealthWarning(
                    kind=alert.kind,
                    round_index=alert.round_index
                    if alert.round_index is not None
                    else -1,
                    trainer=alert.trainer,
                    message=alert.message,
                    severity=alert.severity,
                )
            )
        if emit and self._hub is not None:
            self._hub.emit(ALERT, **alert.to_payload())
        return True

    # -- event folds ---------------------------------------------------------

    def on_step_end(self, event: TelemetryEvent) -> None:
        p = event.payload
        trainer = p.get("trainer")
        steps = int(p.get("steps", 1)) or 1
        per_step = float(p.get("elapsed_s", 0.0)) / steps
        self.windows["step_time_s"].push(event.time_s, per_step)
        state = self.trainers.setdefault(str(trainer), {})
        state["steps_done"] = int(p.get("steps_done", 0))
        state["last_step_s"] = per_step
        state["losses"] = {
            k: float(v) for k, v in (p.get("losses") or {}).items()
        }
        state["worker"] = p.get("worker")
        for term, value in (p.get("losses") or {}).items():
            if not math.isfinite(float(value)):
                self._fire(
                    Alert(
                        kind="nan_loss",
                        severity="critical",
                        source="train",
                        round_index=self.round_index,
                        trainer=str(trainer),
                        message=(
                            f"trainer {trainer}: loss term {term!r} "
                            f"is {float(value)}"
                        ),
                    )
                )
        det = self._detector("step_time_s", str(trainer))
        z = det.update(per_step)
        if det.is_anomaly(z):
            self._fire(
                Alert(
                    kind="step_time_anomaly",
                    severity="warning",
                    source="train",
                    round_index=self.round_index,
                    trainer=str(trainer),
                    value=per_step,
                    threshold=det.z_threshold,
                    message=(
                        f"trainer {trainer}: step time {per_step * 1e3:.2f}ms "
                        f"is {z:.1f} sigma above its EWMA baseline"
                    ),
                )
            )

    def on_fetch_stall(self, event: TelemetryEvent) -> None:
        p = event.payload
        stall = float(p.get("stall_s", 0.0))
        self.windows["fetch_stall_s"].push(event.time_s, stall)
        self._round_stall_s += stall
        trainer = p.get("trainer")
        det = self._detector("fetch_stall_s", None)
        z = det.update(stall)
        if det.is_anomaly(z):
            self._fire(
                Alert(
                    kind="stall_spike",
                    severity="warning",
                    source="data",
                    round_index=self.round_index,
                    trainer=str(trainer) if trainer is not None else None,
                    value=stall,
                    threshold=det.z_threshold,
                    message=(
                        f"fetch stall {stall * 1e3:.2f}ms is {z:.1f} sigma "
                        f"above the recent baseline"
                        + (f" (trainer {trainer})" if trainer else "")
                    ),
                )
            )

    def on_exchange(self, event: TelemetryEvent) -> None:
        self.windows["exchange_bytes"].push(
            event.time_s, float(event.payload.get("nbytes", 0))
        )

    def on_tournament(self, event: TelemetryEvent) -> None:
        self.tournaments += 1
        if event.payload.get("adopted"):
            self.adoptions += 1

    def on_pairing(self, event: TelemetryEvent) -> None:
        p = event.payload
        self.last_pairing = {
            "round": p.get("round"),
            "topology": p.get("topology"),
            "pairs": [list(pair) for pair in (p.get("pairs") or [])],
            "bye": list(p.get("bye") or []),
        }

    def on_ingest(self, event: TelemetryEvent) -> None:
        p = event.payload
        self.windows["ingest_admitted"].push(
            event.time_s, float(p.get("admitted", 0))
        )
        self.windows["ingest_evicted"].push(
            event.time_s, float(p.get("evicted", 0))
        )
        occupancy = p.get("channel_occupancy")
        if occupancy is not None:
            self.windows["channel_occupancy"].push(
                event.time_s, float(occupancy)
            )
        self.last_ingest = {
            k: p.get(k)
            for k in (
                "round", "admitted", "evicted", "stale", "depth", "cursor",
                "universe_version", "universe_size", "producer_lag",
                "store_occupancy", "paused", "channel_occupancy",
            )
        }
        if p.get("paused"):
            self._fire(
                Alert(
                    kind="ingest_backpressure",
                    severity="warning",
                    source="ingest",
                    round_index=self.round_index,
                    value=float(p.get("producer_lag", 0)),
                    message=(
                        f"ingest channel paused at high watermark "
                        f"(depth {p.get('depth')}, producer lag "
                        f"{p.get('producer_lag')})"
                    ),
                )
            )

    def on_serve(self, event: TelemetryEvent) -> None:
        p = event.payload
        self.windows["serve_queue_depth"].push(
            event.time_s, float(p.get("queue_depth", 0))
        )
        latency = float(p.get("wait_s", 0.0)) + float(p.get("forward_s", 0.0))
        window = self.windows["serve_latency_s"]
        window.push(event.time_s, latency)
        self.last_serve = {
            "size": p.get("size"),
            "queue_depth": p.get("queue_depth"),
            "forward_s": p.get("forward_s"),
            "wait_s": p.get("wait_s"),
            "version": p.get("version"),
        }
        if (
            self.serve_slo_s is not None
            and len(window) >= self.slo_min_samples
        ):
            burn = sum(
                1 for v in window.values if v > self.serve_slo_s
            ) / len(window)
            if burn > self.slo_burn_threshold:
                self._fire(
                    Alert(
                        kind="serve_slo_burn",
                        severity="critical",
                        source="serve",
                        value=burn,
                        threshold=self.slo_burn_threshold,
                        message=(
                            f"{burn:.0%} of the last {len(window)} "
                            f"micro-batches exceeded the "
                            f"{self.serve_slo_s * 1e3:.1f}ms SLO"
                        ),
                    )
                )

    def on_eval(self, event: TelemetryEvent) -> None:
        # Two producers share the EVAL type: the driver's eval phase
        # (payload key ``metrics``) and the quality probe (``divergence``).
        # Only the probe feeds the quality fold.
        p = event.payload
        divergence = p.get("divergence")
        if not divergence:
            return
        metric = str(p.get("metric", "js"))
        round_index = (
            int(p["round"]) if p.get("round") is not None else self.round_index
        )
        rendered: dict[str, dict] = {}
        for trainer, values in divergence.items():
            name = str(trainer)
            rendered[name] = {
                k: float(v)
                for k, v in (values or {}).items()
                if isinstance(v, (int, float))
            }
            value = (values or {}).get(metric)
            if value is None or not math.isfinite(float(value)):
                continue
            value = float(value)
            self.windows["eval_divergence"].push(event.time_s, value)
            state = self.trainers.setdefault(name, {})
            state["divergence"] = value
            loss_now = _mean_loss(state.get("losses"))
            floor = self._div_floor.get(name)
            if floor is None or value < floor:
                self._div_floor[name] = value
                self._loss_at_floor[name] = loss_now
            det = self._detector("eval_divergence", name)
            z = det.update(value)
            if det.is_anomaly(z):
                # Critical when the trainer's loss held or improved while
                # its output distribution walked away from the reference —
                # the failure mode loss-based monitors cannot see.
                loss_then = self._loss_at_floor.get(name)
                improving = (
                    loss_now is not None
                    and loss_then is not None
                    and loss_now <= loss_then
                )
                self._fire(
                    Alert(
                        kind="quality_collapse",
                        severity="critical" if improving else "warning",
                        source="eval",
                        round_index=round_index,
                        trainer=name,
                        value=value,
                        threshold=det.z_threshold,
                        message=(
                            f"trainer {name}: {metric} divergence {value:.4g} "
                            f"is {z:.1f} sigma above its EWMA baseline"
                            + (
                                " while its training loss still improves"
                                if improving
                                else ""
                            )
                        ),
                    )
                )
        self.last_quality = {
            "round": round_index,
            "metric": metric,
            "divergence": rendered,
        }

    def on_round_end(self, event: TelemetryEvent) -> None:
        p = event.payload
        round_index = int(p.get("round", -1))
        self.round_index = round_index
        train_s = float(p.get("train_s", 0.0))
        self.windows["round_train_s"].push(event.time_s, train_s)
        if round_index >= self.warmup_rounds and train_s > 0:
            fraction = self._round_stall_s / train_s
            if fraction > self.stall_fraction_threshold:
                self._fire(
                    Alert(
                        kind="stall_regression",
                        severity="warning",
                        source="data",
                        round_index=round_index,
                        value=fraction,
                        threshold=self.stall_fraction_threshold,
                        message=(
                            f"round {round_index}: fetch stall "
                            f"{self._round_stall_s:.3f}s is {fraction:.0%} "
                            f"of the {train_s:.3f}s train phase"
                        ),
                    )
                )
        self._round_stall_s = 0.0

    def on_health(self, event: TelemetryEvent) -> None:
        self.health_events += 1

    def on_alert(self, event: TelemetryEvent) -> None:
        # Alerts relayed from execution workers arrive over the hub like
        # any worker telemetry; admit them through the same engine so they
        # land in history/snapshot exactly once.  Our own emissions carry
        # origin="live" and are skipped — they were processed at fire time.
        if event.payload.get("origin") != "worker":
            return
        import dataclasses

        alert = Alert.from_payload(event.payload)
        if alert.round_index is None and self.round_index is not None:
            alert = dataclasses.replace(alert, round_index=self.round_index)
        self._fire(alert, emit=False)

    # -- the status surface --------------------------------------------------

    @property
    def alerts(self) -> list[Alert]:
        return self.engine.alerts

    def snapshot(self) -> dict:
        """One JSON-encodable view of run health *right now* — what the
        watch CLI renders and the serve status endpoint returns."""
        return {
            "round": self.round_index,
            "rounds_total": self.rounds_total,
            "trainers": {
                name: dict(state) for name, state in self.trainers.items()
            },
            "windows": {
                name: window.snapshot()
                for name, window in self.windows.items()
                if len(window)
            },
            "rates": {
                "ingest_admitted_per_s": self.windows[
                    "ingest_admitted"
                ].rate_per_s(),
                "ingest_evicted_per_s": self.windows[
                    "ingest_evicted"
                ].rate_per_s(),
            },
            "pairing": self.last_pairing,
            "ingest": self.last_ingest,
            "serve": self._serve_snapshot(),
            "quality": self.last_quality,
            "tournaments": {
                "judged": self.tournaments,
                "adoptions": self.adoptions,
            },
            "health_events": self.health_events,
            "alerts": self.engine.snapshot(),
        }

    def _serve_snapshot(self) -> dict | None:
        window = self.windows["serve_latency_s"]
        if not window and self.last_serve is None:
            return None
        burn = None
        if self.serve_slo_s is not None and len(window):
            burn = sum(
                1 for v in window.values if v > self.serve_slo_s
            ) / len(window)
        return {
            "last": self.last_serve,
            "latency": window.snapshot() if len(window) else None,
            "queue_depth": self.windows["serve_queue_depth"].last,
            "slo_s": self.serve_slo_s,
            "slo_burn": burn,
        }
