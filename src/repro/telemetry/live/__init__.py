"""The live observability plane: rollups, alerts, flight recording.

Everything in :mod:`repro.telemetry` up to here is post-mortem — JSONL
written during the run, ``trace-report`` afterwards.  This package is the
"is the run healthy *right now*" layer the streamed/serving deployments
need:

- :class:`RollingWindow` / :class:`EwmaDetector` — bounded ring-buffer
  time series and streaming z-score anomaly detection;
- :class:`Alert` / :class:`AlertEngine` — typed alerts with severity,
  dedup keys, and round-based cooldown;
- :class:`LiveAggregator` — the callback that folds the hub's event
  stream into windows, runs the detectors, routes admitted alerts into
  ``History.health_warnings`` *during* the run and re-emits them as
  ``alert`` telemetry events;
- :class:`FlightRecorder` — a bounded per-subsystem ring of recent
  events, dumped as an atomic JSON post-mortem bundle on crash, critical
  alert, or SIGTERM;
- ``python -m repro.telemetry watch <trace.jsonl>`` — a terminal status
  surface rendered from a running (``--follow``) or finished trace.

Typical wiring (the experiments CLI does this under ``--live`` /
``--flight-recorder``)::

    from repro.telemetry.live import FlightRecorder, LiveAggregator

    live = LiveAggregator()
    history = driver.run(callbacks=[live, FlightRecorder("out/flightrec")])
    print(live.snapshot()["alerts"])
"""

from repro.telemetry.live.aggregator import WINDOW_SERIES, LiveAggregator
from repro.telemetry.live.alerts import Alert, AlertEngine
from repro.telemetry.live.recorder import (
    SUBSYSTEM_OF,
    FlightRecorder,
    load_bundle,
)
from repro.telemetry.live.windows import EwmaDetector, RollingWindow

__all__ = [
    "RollingWindow",
    "EwmaDetector",
    "Alert",
    "AlertEngine",
    "LiveAggregator",
    "WINDOW_SERIES",
    "FlightRecorder",
    "SUBSYSTEM_OF",
    "load_bundle",
]
