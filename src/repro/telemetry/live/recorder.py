"""The flight recorder: a bounded ring of recent events per subsystem.

Full JSONL tracing of a long streamed campaign is expensive and mostly
archives healthy rounds nobody will read.  The flight recorder keeps only
the *recent past* — the last N events of every subsystem, jsonified, in
memory — and writes a post-mortem bundle when something actually goes
wrong: a crash escaping the driver's round loop (``on_run_error``), a
critical health warning or alert, or a SIGTERM from the scheduler.  The
bundle is one JSON file, published atomically (tmp + rename, like
checkpoints), so a half-written dump can never masquerade as evidence.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from collections import deque
from pathlib import Path

from repro.telemetry.callbacks import Callback, _jsonify
from repro.telemetry.events import TelemetryEvent

__all__ = ["FlightRecorder", "SUBSYSTEM_OF", "load_bundle"]

#: Event type -> the subsystem ring it lands in.
SUBSYSTEM_OF = {
    "step_end": "train",
    "round_end": "train",
    "eval": "train",
    "pairing": "exchange",
    "tournament": "exchange",
    "exchange": "exchange",
    "datastore_fetch": "data",
    "fetch_stall": "data",
    "prefetch_fill": "data",
    "ingest": "ingest",
    "serve": "serve",
    "checkpoint": "checkpoint",
    "health": "health",
    "alert": "health",
    "resource_sample": "resource",
    "span": "span",
}

#: Bundle schema version (bumped on incompatible shape changes).
BUNDLE_VERSION = 1


class FlightRecorder(Callback):
    """Ring-buffer event recorder with post-mortem bundle dumps.

    Parameters
    ----------
    out_dir:
        Where bundles are written (created on demand).
    capacity:
        Ring length per subsystem.
    dump_on:
        Which triggers write a bundle automatically: any subset of
        ``{"crash", "critical", "sigterm"}``.  Manual :meth:`dump` always
        works.
    max_auto_dumps:
        Bound on trigger-driven dumps per recorder, so a flapping alert
        cannot fill the disk.
    record_spans:
        Spans are high-volume; keep them out of the rings unless asked.
    """

    def __init__(
        self,
        out_dir="flightrec",
        capacity: int = 64,
        dump_on: tuple = ("crash", "critical", "sigterm"),
        max_auto_dumps: int = 4,
        record_spans: bool = False,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.out_dir = Path(out_dir)
        self.capacity = int(capacity)
        self.dump_on = frozenset(dump_on)
        self.max_auto_dumps = int(max_auto_dumps)
        self.record_spans = bool(record_spans)
        self.rings: dict[str, deque] = {}
        self.events_seen = 0
        self.dumps_written: list[Path] = []
        self._auto_dumps = 0
        self._dump_seq = 0
        self._run_meta: dict = {}
        self._lock = threading.Lock()
        self._prev_sigterm = None

    # -- recording -----------------------------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        if event.type == "span" and not self.record_spans:
            return
        subsystem = SUBSYSTEM_OF.get(event.type, "other")
        record = {
            "type": event.type,
            "time_s": round(event.time_s, 9),
            "sequence": event.sequence,
            **_jsonify(event.payload),
        }
        with self._lock:
            ring = self.rings.get(subsystem)
            if ring is None:
                ring = self.rings[subsystem] = deque(maxlen=self.capacity)
            ring.append(record)
            self.events_seen += 1
        if event.type in ("health", "alert"):
            if (
                "critical" in self.dump_on
                and event.payload.get("severity") == "critical"
            ):
                self._auto_dump(f"critical-{event.payload.get('kind', '?')}")

    # -- lifecycle + triggers ------------------------------------------------

    def on_run_begin(self, driver) -> None:
        self._run_meta = {
            "driver": type(driver).__name__,
            "rounds": getattr(driver.config, "rounds", None),
            "population": [t.name for t in driver.trainers],
            "backend": driver.backend.name,
            "workers": driver.backend.num_workers,
        }
        if (
            "sigterm" in self.dump_on
            and threading.current_thread() is threading.main_thread()
        ):
            self._prev_sigterm = signal.getsignal(signal.SIGTERM)
            signal.signal(signal.SIGTERM, self._on_sigterm)

    def on_run_end(self, driver, history) -> None:
        self._restore_sigterm()

    def on_run_error(self, driver, exc: BaseException) -> None:
        """Driver hook: the round loop raised.  Dump before unwinding."""
        if "crash" in self.dump_on:
            self._auto_dump(f"crash-{type(exc).__name__}", error=repr(exc))

    def _on_sigterm(self, signum, frame) -> None:
        self._auto_dump("sigterm")
        self._restore_sigterm()
        # Chain to whatever was installed before us (default: terminate).
        prev = self._prev_sigterm
        if callable(prev):
            prev(signum, frame)
        elif prev == signal.SIG_DFL:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            signal.raise_signal(signal.SIGTERM)

    def _restore_sigterm(self) -> None:
        if self._prev_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, self._prev_sigterm)
            except ValueError:  # not the main thread anymore
                pass
            self._prev_sigterm = None

    def _auto_dump(self, reason: str, **extra) -> None:
        if self._auto_dumps >= self.max_auto_dumps:
            return
        self._auto_dumps += 1
        self.dump(reason, **extra)

    # -- the bundle ----------------------------------------------------------

    def bundle(self, reason: str, **extra) -> dict:
        """The post-mortem payload: every ring, newest-last, plus
        provenance."""
        with self._lock:
            rings = {name: list(ring) for name, ring in self.rings.items()}
        return {
            "bundle": "flight_recorder",
            "version": BUNDLE_VERSION,
            "reason": reason,
            "created_unix": time.time(),
            "capacity": self.capacity,
            "events_seen": self.events_seen,
            "run": dict(self._run_meta),
            "events": rings,
            **extra,
        }

    def dump(self, reason: str = "manual", path=None, **extra) -> Path:
        """Write one bundle; returns the published path.

        Publication is atomic (tmp + ``os.replace``): a reader polling
        the directory sees either nothing or a complete bundle.
        """
        self.out_dir.mkdir(parents=True, exist_ok=True)
        if path is None:
            self._dump_seq += 1
            safe = "".join(
                c if c.isalnum() or c in "._-" else "-" for c in reason
            )
            path = self.out_dir / f"flightrec-{self._dump_seq:03d}-{safe}.json"
        path = Path(path)
        payload = json.dumps(self.bundle(reason, **extra), indent=2)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        tmp.write_text(payload + "\n", encoding="utf-8")
        os.replace(tmp, path)
        self.dumps_written.append(path)
        return path


def load_bundle(path) -> dict:
    """Read and validate a flight-recorder bundle (raises ``ValueError``
    on anything that is not one)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("bundle") != "flight_recorder":
        raise ValueError(f"{path}: not a flight-recorder bundle")
    version = data.get("version")
    if version != BUNDLE_VERSION:
        raise ValueError(
            f"{path}: unsupported bundle version {version!r} "
            f"(supported: {BUNDLE_VERSION})"
        )
    for key in ("reason", "events", "run"):
        if key not in data:
            raise ValueError(f"{path}: bundle missing {key!r}")
    if not isinstance(data["events"], dict):
        raise ValueError(f"{path}: bundle events must map subsystem -> list")
    return data
