"""Typed alerts and the dedup/cooldown engine that admits them.

Detectors are deliberately twitchy (a z-score fires on every outlier);
the :class:`AlertEngine` is the layer that turns raw detections into an
operator-grade signal: one :class:`Alert` per distinct problem, repeated
at most once per cooldown period, never an unbounded flood.  Cooldown is
measured in *rounds*, not wall seconds, so admission decisions replay
deterministically from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Alert", "AlertEngine"]


@dataclass(frozen=True)
class Alert:
    """One admitted run-health alert from the live plane."""

    kind: str
    severity: str  # "warning" | "critical"
    message: str
    source: str = "train"  # train | data | ingest | serve | exchange
    round_index: int | None = None
    trainer: str | None = None
    #: The observed reading and the limit it crossed, when the alert has
    #: a scalar form (z-score detections carry the z and the threshold).
    value: float | None = None
    threshold: float | None = None
    origin: str = "live"  # "live" (driver-side engine) | "worker" (relay)

    @property
    def dedup_key(self) -> tuple[str, str, str | None]:
        """What "the same problem" means for cooldown purposes: the
        kind, the subsystem, and the trainer (``None`` = population)."""
        return (self.kind, self.source, self.trainer)

    def render(self) -> str:
        where = f" trainer={self.trainer}" if self.trainer else ""
        when = f" round={self.round_index}" if self.round_index is not None else ""
        return (
            f"[{self.severity}] {self.source}/{self.kind}{where}{when}: "
            f"{self.message}"
        )

    def to_payload(self) -> dict:
        """The ``alert`` telemetry-event payload shape."""
        return {
            "kind": self.kind,
            "severity": self.severity,
            "source": self.source,
            "round": self.round_index,
            "trainer": self.trainer,
            "message": self.message,
            "value": self.value,
            "threshold": self.threshold,
            "origin": self.origin,
        }

    @classmethod
    def from_payload(cls, payload) -> "Alert":
        """Rebuild an alert from an ``alert`` event payload (the relay
        and replay paths)."""
        return cls(
            kind=str(payload.get("kind", "unknown")),
            severity=str(payload.get("severity", "warning")),
            message=str(payload.get("message", "")),
            source=str(payload.get("source", "train")),
            round_index=payload.get("round"),
            trainer=payload.get("trainer"),
            value=payload.get("value"),
            threshold=payload.get("threshold"),
            origin=str(payload.get("origin", "live")),
        )


@dataclass
class AlertEngine:
    """Admission control between detectors and the rest of the system.

    ``fire`` admits an alert unless the same :attr:`Alert.dedup_key`
    already fired within the last ``cooldown_rounds`` rounds (critical
    alerts ignore cooldown once — an escalation from warning to critical
    must never be suppressed by its own warning).  Admitted alerts
    accumulate on :attr:`alerts`, bounded by ``max_alerts`` (oldest
    dropped), so a pathological run cannot grow memory without bound.
    """

    cooldown_rounds: int = 5
    max_alerts: int = 256
    alerts: list[Alert] = field(default_factory=list)
    _last_fired: dict = field(default_factory=dict)
    _escalated: set = field(default_factory=set)
    dropped: int = 0

    def fire(self, alert: Alert) -> bool:
        """Admit or suppress one detection; True when admitted."""
        key = alert.dedup_key
        last = self._last_fired.get(key)
        round_index = alert.round_index if alert.round_index is not None else 0
        if last is not None:
            last_round, last_severity = last
            in_cooldown = round_index < last_round + self.cooldown_rounds
            escalating = (
                alert.severity == "critical"
                and last_severity != "critical"
                and key not in self._escalated
            )
            if in_cooldown and not escalating:
                return False
            if escalating:
                self._escalated.add(key)
        self._last_fired[key] = (round_index, alert.severity)
        self.alerts.append(alert)
        if len(self.alerts) > self.max_alerts:
            overflow = len(self.alerts) - self.max_alerts
            del self.alerts[:overflow]
            self.dropped += overflow
        return True

    @property
    def critical(self) -> list[Alert]:
        return [a for a in self.alerts if a.severity == "critical"]

    def snapshot(self) -> dict:
        """JSON-encodable view for the status surface."""
        return {
            "count": len(self.alerts),
            "dropped": self.dropped,
            "critical": len(self.critical),
            "recent": [a.to_payload() for a in self.alerts[-20:]],
        }
