"""Ring-buffer time-series windows and streaming anomaly detectors.

The live plane cannot afford the offline path's "keep every event, fold
at the end" shape: a streamed campaign never ends.  A
:class:`RollingWindow` keeps the last N ``(time, value)`` readings of one
series in a ring buffer — O(N) memory forever — and answers the questions
the status surface asks (count, mean, min/max, p50/p95/p99, per-second
rate).  An :class:`EwmaDetector` tracks an exponentially-weighted mean
and variance of the same stream and flags readings whose z-score against
that baseline exceeds a threshold — the "this round is suddenly unlike
the recent past" signal that absolute thresholds cannot express for
workloads whose normal varies run to run.
"""

from __future__ import annotations

import math
from collections import deque

__all__ = ["RollingWindow", "EwmaDetector"]


class RollingWindow:
    """The last ``maxlen`` ``(time_s, value)`` readings of one series."""

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self.maxlen = int(maxlen)
        self._ring: deque[tuple[float, float]] = deque(maxlen=self.maxlen)
        #: Readings ever pushed (the ring only keeps the tail).
        self.total = 0

    def push(self, time_s: float, value: float) -> None:
        self._ring.append((float(time_s), float(value)))
        self.total += 1

    def __len__(self) -> int:
        return len(self._ring)

    def __bool__(self) -> bool:
        return bool(self._ring)

    @property
    def values(self) -> list[float]:
        return [v for _, v in self._ring]

    @property
    def last(self) -> float | None:
        return self._ring[-1][1] if self._ring else None

    @property
    def mean(self) -> float:
        if not self._ring:
            return 0.0
        return sum(v for _, v in self._ring) / len(self._ring)

    @property
    def min(self) -> float:
        return min((v for _, v in self._ring), default=0.0)

    @property
    def max(self) -> float:
        return max((v for _, v in self._ring), default=0.0)

    @property
    def sum(self) -> float:
        return sum(v for _, v in self._ring)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile (``q`` in [0, 100]) over the
        windowed values; 0.0 for an empty window."""
        if not self._ring:
            return 0.0
        ordered = sorted(v for _, v in self._ring)
        if len(ordered) == 1:
            return ordered[0]
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def rate_per_s(self) -> float:
        """Windowed sum divided by the windowed time span (0.0 when the
        window spans no time) — admit/evict *rates* for counter-ish
        series whose pushes carry per-interval deltas."""
        if len(self._ring) < 2:
            return 0.0
        span = self._ring[-1][0] - self._ring[0][0]
        if span <= 0:
            return 0.0
        return self.sum / span

    def snapshot(self) -> dict:
        """The JSON-encodable rollup the status surface renders."""
        return {
            "count": len(self._ring),
            "total": self.total,
            "last": self.last,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class EwmaDetector:
    """Streaming z-score anomaly detection over an EWMA baseline.

    :meth:`update` folds one reading into exponentially-weighted estimates
    of the series mean and variance and returns the reading's z-score
    against the *pre-update* baseline (so a spike cannot hide inside the
    baseline it just inflated).  The caller compares the score to
    :attr:`z_threshold` via :meth:`is_anomaly`; the first ``warmup``
    readings never flag, because the baseline is still forming.

    ``min_std`` floors the standard deviation: early near-constant series
    would otherwise produce unbounded z-scores on the first honest
    fluctuation.
    """

    def __init__(
        self,
        alpha: float = 0.25,
        z_threshold: float = 4.0,
        warmup: int = 8,
        min_std: float = 1e-9,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        self.alpha = float(alpha)
        self.z_threshold = float(z_threshold)
        self.warmup = int(warmup)
        self.min_std = float(min_std)
        self.n = 0
        self.mean = 0.0
        self._var = 0.0

    @property
    def std(self) -> float:
        return max(math.sqrt(self._var), self.min_std)

    def update(self, value: float) -> float:
        """Fold one reading; returns its z-score vs. the prior baseline
        (0.0 during warmup and for non-finite readings)."""
        value = float(value)
        if not math.isfinite(value):
            # Non-finite readings are their own (critical) signal — they
            # must not poison the baseline for later finite ones.
            return 0.0
        if self.n == 0:
            self.n = 1
            self.mean = value
            return 0.0
        z = (value - self.mean) / self.std
        delta = value - self.mean
        self.mean += self.alpha * delta
        self._var = (1.0 - self.alpha) * (
            self._var + self.alpha * delta * delta
        )
        self.n += 1
        return z if self.n > self.warmup else 0.0

    def is_anomaly(self, z: float) -> bool:
        """Whether a z-score from :meth:`update` crosses the threshold
        (one-sided: only regressions — higher-than-baseline — flag)."""
        return z > self.z_threshold
