"""Offline trace analysis: summarize a JSONL telemetry trace.

The counterpart of :class:`~repro.telemetry.callbacks.JsonlTraceWriter`:
reads a trace back, folds it through the same aggregation logic the live
callbacks use, and renders the run-level summary the paper's figures are
built from — per-phase wall-clock, tournament adoption rate, exchange
traffic, datastore fetch locality, data-pipeline stall vs. overlap, and
(for traces recorded under a parallel execution backend) per-worker
train-time and stall attribution.

Exposed on the command line as::

    python -m repro.experiments trace-report <trace.jsonl>
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.telemetry.callbacks import CounterAggregator, JsonlTraceWriter, WallClockTimer
from repro.telemetry.events import (
    EVAL,
    EVENT_TYPES,
    HEALTH,
    INGEST,
    PAIRING,
    SPAN,
    TelemetryEvent,
)
from repro.telemetry.resources import summarize_resources
from repro.utils.units import format_bytes, format_time

__all__ = [
    "load_trace",
    "load_trace_header",
    "summarize_trace",
    "summarize_pairings",
    "summarize_ingest",
    "summarize_eval",
    "trace_summary",
    "render_trace_report",
    "trace_report",
]

#: Trace schema versions this reader understands.
SUPPORTED_TRACE_VERSIONS = frozenset({JsonlTraceWriter.SCHEMA_VERSION})


def _parse_trace(path) -> tuple[dict | None, list[TelemetryEvent]]:
    """Parse a JSONL trace into its (optional) header and events.

    The header record — ``{"type": "trace_header", ...}`` — is valid only
    as the first non-blank line and must carry a supported ``version``;
    headerless (version-1) traces load fine.  Blank lines are skipped;
    malformed JSON, misplaced headers, and unknown event types raise
    ``ValueError`` with the offending line number.
    """
    header: dict | None = None
    events: list[TelemetryEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        first = True
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            event_type = record.pop("type", None)
            if event_type == "trace_header":
                if not first:
                    raise ValueError(
                        f"{path}:{lineno}: trace_header is only valid as "
                        f"the first record"
                    )
                version = record.get("version")
                if version not in SUPPORTED_TRACE_VERSIONS:
                    raise ValueError(
                        f"{path}:{lineno}: unsupported trace schema version "
                        f"{version!r} (supported: "
                        f"{sorted(SUPPORTED_TRACE_VERSIONS)})"
                    )
                header = record
                first = False
                continue
            first = False
            if event_type not in EVENT_TYPES:
                raise ValueError(
                    f"{path}:{lineno}: unknown event type {event_type!r}"
                )
            events.append(
                TelemetryEvent(
                    type=event_type,
                    time_s=float(record.pop("time_s", 0.0)),
                    sequence=int(record.pop("sequence", len(events))),
                    payload=record,
                )
            )
    return header, events


def load_trace(path) -> list[TelemetryEvent]:
    """Parse a JSONL trace file back into events (header validated and
    skipped; see :func:`load_trace_header` to read it)."""
    return _parse_trace(path)[1]


def load_trace_header(path) -> dict | None:
    """The validated ``trace_header`` record of a trace, or ``None`` for
    headerless (pre-version-2) traces."""
    return _parse_trace(path)[0]


def summarize_trace(
    events: Iterable[TelemetryEvent],
) -> tuple[WallClockTimer, CounterAggregator, dict[str, int]]:
    """Replay events through the live aggregation callbacks.

    Returns the filled timer and counter aggregator plus a per-type event
    census.
    """
    timer = WallClockTimer()
    counters = CounterAggregator()
    census: dict[str, int] = {}
    for event in events:
        census[event.type] = census.get(event.type, 0) + 1
        timer.handle(event)
        counters.handle(event)
    return timer, counters, census


def summarize_pairings(events: Iterable[TelemetryEvent]) -> dict | None:
    """Aggregate the trace's ``pairing`` events: who met whom under which
    topology.  Returns ``None`` when the trace has no pairing events.

    Keys: ``rounds`` (pairing events seen), ``topologies`` (name -> event
    count), ``pairs`` (total pairings), ``unique_pairs`` (distinct
    unordered trainer pairs), ``byes`` (total sit-outs, with
    ``bye_counts`` per trainer), and ``partners`` (trainer -> number of
    distinct partners met across the run — the mixing diagnostic: under a
    ring it stays at 2, under random pairing it climbs toward k-1).
    """
    rounds = 0
    topologies: dict[str, int] = {}
    total_pairs = 0
    unique_pairs: set[frozenset] = set()
    byes = 0
    bye_counts: dict[str, int] = {}
    partners: dict[str, set] = {}
    for event in events:
        if event.type != PAIRING:
            continue
        rounds += 1
        p = event.payload
        topology = str(p.get("topology", "?"))
        topologies[topology] = topologies.get(topology, 0) + 1
        for pair in p.get("pairs") or []:
            a, b = str(pair[0]), str(pair[1])
            total_pairs += 1
            unique_pairs.add(frozenset((a, b)))
            partners.setdefault(a, set()).add(b)
            partners.setdefault(b, set()).add(a)
        for name in p.get("bye") or []:
            byes += 1
            bye_counts[str(name)] = bye_counts.get(str(name), 0) + 1
    if not rounds:
        return None
    return {
        "rounds": rounds,
        "topologies": topologies,
        "pairs": total_pairs,
        "unique_pairs": len(unique_pairs),
        "byes": byes,
        "bye_counts": bye_counts,
        "partners": {
            name: len(met) for name, met in sorted(partners.items())
        },
    }


def summarize_ingest(events: Iterable[TelemetryEvent]) -> dict | None:
    """Aggregate the trace's ``ingest`` events: the streamed-universe
    watermarks.  Returns ``None`` when the trace has no ingest events.

    Keys: ``polls``, summed ``admitted``/``evicted``/``stale``/
    ``store_evictions``, the final ``universe_size``/``universe_version``,
    ``max_producer_lag``, ``paused_polls`` (polls that hit the channel's
    high watermark), and mean/peak ``channel_occupancy`` (absent in
    traces predating the occupancy payload).
    """
    polls = 0
    admitted = evicted = stale = store_evictions = 0
    universe_size = universe_version = None
    max_lag = 0
    paused_polls = 0
    occupancies: list[float] = []
    for event in events:
        if event.type != INGEST:
            continue
        polls += 1
        p = event.payload
        admitted += int(p.get("admitted", 0))
        evicted += int(p.get("evicted", 0))
        stale += int(p.get("stale", 0))
        store_evictions += int(p.get("store_evictions", 0))
        universe_size = p.get("universe_size", universe_size)
        universe_version = p.get("universe_version", universe_version)
        max_lag = max(max_lag, int(p.get("producer_lag", 0)))
        if p.get("paused"):
            paused_polls += 1
        occupancy = p.get("channel_occupancy")
        if occupancy is not None:
            occupancies.append(float(occupancy))
    if not polls:
        return None
    return {
        "polls": polls,
        "admitted": admitted,
        "evicted": evicted,
        "stale": stale,
        "store_evictions": store_evictions,
        "universe_size": universe_size,
        "universe_version": universe_version,
        "max_producer_lag": max_lag,
        "paused_polls": paused_polls,
        "mean_channel_occupancy": (
            sum(occupancies) / len(occupancies) if occupancies else None
        ),
        "peak_channel_occupancy": max(occupancies) if occupancies else None,
    }


def summarize_eval(events: Iterable[TelemetryEvent]) -> dict | None:
    """Aggregate the trace's quality-probe ``eval`` events (the ones
    carrying a ``divergence`` payload; driver eval snapshots, which carry
    ``metrics``, are not part of this section).  Returns ``None`` when the
    trace has no probe events.

    Keys: ``probes`` (probe passes seen), ``metric`` (the probe's primary
    divergence), ``last_round``, and per-trainer ``trainers`` rows with
    the ``last`` and ``best`` (lowest) primary-metric reading plus the
    number of ``points`` folded — the offline counterpart of the live
    plane's ``quality`` snapshot section.
    """
    probes = 0
    metric = None
    last_round = None
    trainers: dict[str, dict] = {}
    for event in events:
        if event.type != EVAL:
            continue
        p = event.payload
        divergence = p.get("divergence")
        if not divergence:
            continue
        probes += 1
        metric = str(p.get("metric", metric or "js"))
        last_round = p.get("round", last_round)
        for name, values in divergence.items():
            value = (values or {}).get(metric)
            if value is None:
                continue
            value = float(value)
            row = trainers.setdefault(
                str(name), {"last": value, "best": value, "points": 0}
            )
            row["last"] = value
            row["best"] = min(row["best"], value)
            row["points"] += 1
    if not probes:
        return None
    return {
        "probes": probes,
        "metric": metric,
        "last_round": last_round,
        "trainers": trainers,
    }


def trace_summary(path) -> dict:
    """Machine-readable trace summary: every section of the text report
    as one JSON-encodable dict (``trace-report --format json``).

    Stable shape: ``header`` (the validated trace header or ``None``),
    ``events`` (per-type census), ``phases`` (wall-clock totals plus
    ``total``/``rounds``), ``counters`` (the full
    :meth:`~repro.telemetry.callbacks.CounterAggregator.summary` dict,
    per-worker keys included), ``percentiles`` (histogram summaries keyed
    by metric name, only metrics that saw data), ``pairings``/``ingest``/
    ``eval`` (the :func:`summarize_pairings`/:func:`summarize_ingest`/
    :func:`summarize_eval` aggregates,
    ``None`` when the trace carries no such events), ``resources`` (per-source
    peak-RSS/CPU rows from ``resource_sample`` events), ``health`` (the
    raw warning payloads) and ``spans`` (count + track census, ``None``
    for untraced runs).  The bench harness and CI consume this instead of
    scraping the text rendering.
    """
    from repro.telemetry.metrics import collect_metrics

    header, events = _parse_trace(path)
    timer, counters, census = summarize_trace(events)
    registry = collect_metrics(events)
    percentiles = {
        metric.name: metric.to_json()
        for metric in registry
        if metric.kind == "histogram" and metric.count > 0
    }
    spans = None
    if census.get(SPAN):
        tracks = sorted(
            {str(e.payload.get("track", "main")) for e in events if e.type == SPAN}
        )
        spans = {"count": census[SPAN], "tracks": tracks}
    return {
        "trace": str(path),
        "header": header,
        "events": census,
        "phases": {
            **{phase: timer.totals[phase] for phase in timer.PHASES},
            "total": timer.total_s,
            "rounds": timer.rounds,
        },
        "counters": counters.summary(),
        "percentiles": percentiles,
        "pairings": summarize_pairings(events),
        "ingest": summarize_ingest(events),
        "eval": summarize_eval(events),
        "resources": summarize_resources(events),
        "health": [dict(e.payload) for e in events if e.type == HEALTH],
        "spans": spans,
    }


def render_trace_report(path) -> str:
    """Load a trace and render the plain-text summary."""
    header, events = _parse_trace(path)
    timer, counters, census = summarize_trace(events)
    out = [f"== telemetry trace report: {path} =="]
    if header is not None:
        run = header.get("run") or {}
        bits = [f"schema v{header.get('version')}"]
        if run.get("driver"):
            bits.append(str(run["driver"]))
        if run.get("backend"):
            bits.append(
                f"backend {run['backend']}"
                + (f" x{run['workers']}" if run.get("workers") else "")
            )
        if run.get("population"):
            bits.append(f"{len(run['population'])} trainers")
        out.append("header: " + ", ".join(bits))
    out.append(f"events: {len(events)}")
    for event_type in sorted(census):
        out.append(f"  {event_type}: {census[event_type]}")
    out.append("per-phase wall clock:")
    for phase in timer.PHASES:
        out.append(f"  {phase}: {timer.totals[phase]:.3f}s")
    out.append(f"  total: {timer.total_s:.3f}s over {timer.rounds} rounds")
    summary = counters.summary()
    out.append("counters:")
    out.append(f"  steps: {summary['steps']}")
    out.append(
        f"  tournaments: {summary['tournaments']} "
        f"(adoption rate {summary['adoption_rate']:.3f})"
    )
    out.append(
        f"  exchanges: {summary['exchanges']} "
        f"({summary['exchange_bytes']} bytes)"
    )
    if summary["datastore_local_fetches"] or summary["datastore_remote_fetches"]:
        out.append(
            f"  datastore fetches: {summary['datastore_local_fetches']} local / "
            f"{summary['datastore_remote_fetches']} remote "
            f"(remote fraction {summary['remote_fetch_fraction']:.3f})"
        )
    if summary["checkpoint_saves"] or summary["checkpoint_restores"]:
        out.append(
            f"  checkpoints: {summary['checkpoint_saves']} saved / "
            f"{summary['checkpoint_restores']} restored "
            f"({summary['checkpoint_bytes']} bytes)"
        )
    if counters.worker_train_s:
        out.append("per-worker train wall clock:")
        busiest = max(counters.worker_train_s.values())
        for key in sorted(counters.worker_train_s):
            seconds = counters.worker_train_s[key]
            share = seconds / busiest if busiest else 0.0
            out.append(f"  {key}: {seconds:.3f}s ({share:.0%} of busiest)")
    if summary["fetch_stalls"]:
        out.append("data pipeline:")
        out.append(
            f"  fetch stalls: {summary['fetch_stalls']} "
            f"(stalled {summary['fetch_stall_s']:.3f}s, overlapped "
            f"{summary['fetch_overlap_s']:.3f}s of materialization)"
        )
        if summary["prefetch_fills"]:
            out.append(
                f"  prefetch fills: {summary['prefetch_fills']} "
                f"(mean queue fill {summary['prefetch_mean_fill']:.2f})"
            )
        workers = sorted(
            set(counters.worker_stall_s) | set(counters.worker_overlap_s)
        )
        if workers:
            out.append("  per-worker stall vs. overlap:")
            for key in workers:
                out.append(
                    f"    {key}: stall "
                    f"{counters.worker_stall_s.get(key, 0.0):.3f}s / overlap "
                    f"{counters.worker_overlap_s.get(key, 0.0):.3f}s"
                )
    pairings = summarize_pairings(events)
    if pairings:
        topo_bits = ", ".join(
            f"{name} x{n}" for name, n in sorted(pairings["topologies"].items())
        )
        out.append("pairing:")
        out.append(
            f"  {pairings['rounds']} rounds ({topo_bits}): "
            f"{pairings['pairs']} pairings, "
            f"{pairings['unique_pairs']} unique, {pairings['byes']} byes"
        )
        if pairings["partners"]:
            degrees = list(pairings["partners"].values())
            out.append(
                f"  partner diversity: min {min(degrees)} / mean "
                f"{sum(degrees) / len(degrees):.1f} / max {max(degrees)} "
                f"distinct partners per trainer"
            )
    ingest = summarize_ingest(events)
    if ingest:
        out.append("ingest:")
        out.append(
            f"  {ingest['polls']} polls: admitted {ingest['admitted']}, "
            f"evicted {ingest['evicted']} ({ingest['stale']} stale), "
            f"universe {ingest['universe_size']} "
            f"(v{ingest['universe_version']})"
        )
        lag_line = f"  producer lag max {ingest['max_producer_lag']}"
        if ingest["mean_channel_occupancy"] is not None:
            lag_line += (
                f"; channel occupancy mean "
                f"{ingest['mean_channel_occupancy']:.0%} peak "
                f"{ingest['peak_channel_occupancy']:.0%}"
            )
        if ingest["paused_polls"]:
            lag_line += (
                f"; {ingest['paused_polls']} poll"
                f"{'s' if ingest['paused_polls'] != 1 else ''} hit the "
                f"high watermark"
            )
        out.append(lag_line)
    quality = summarize_eval(events)
    if quality:
        out.append("eval quality:")
        out.append(
            f"  {quality['probes']} probe pass"
            f"{'es' if quality['probes'] != 1 else ''} "
            f"(metric {quality['metric']}), last round "
            f"{quality['last_round']}"
        )
        for name in sorted(quality["trainers"]):
            row = quality["trainers"][name]
            out.append(
                f"  {name}: last {row['last']:.4g} / best {row['best']:.4g} "
                f"over {row['points']} point"
                f"{'s' if row['points'] != 1 else ''}"
            )
    out.extend(_render_percentiles(events))
    resources = summarize_resources(events)
    if resources:
        out.append("resources:")
        for source in sorted(resources):
            row = resources[source]
            cpu_s = row["cpu_user_s"] + row["cpu_system_s"]
            out.append(
                f"  {source}: peak rss {format_bytes(row['peak_rss_bytes'])}, "
                f"cpu {format_time(cpu_s)} "
                f"({row['samples']} sample{'s' if row['samples'] != 1 else ''})"
            )
    health = [e for e in events if e.type == "health"]
    if health:
        out.append("health warnings:")
        for e in health:
            p = e.payload
            out.append(
                f"  [{p.get('severity', 'warning')}] {p.get('kind', '?')} "
                f"(round {p.get('round')}): {p.get('message', '')}"
            )
    if census.get(SPAN):
        tracks = {e.payload.get("track") for e in events if e.type == SPAN}
        out.append(
            f"spans: {census[SPAN]} over {len(tracks)} track(s) "
            f"(convert with: python -m repro.experiments trace-export {path})"
        )
    return "\n".join(out)


def _render_percentiles(events) -> list[str]:
    """Latency-percentile table lines from the metrics registry."""
    from repro.telemetry.metrics import collect_metrics

    registry = collect_metrics(events)
    rows = [
        ("step time", "repro_step_time_seconds", "s"),
        ("fetch latency", "repro_fetch_latency_seconds", "s"),
        ("fetch stall", "repro_fetch_stall_seconds", "s"),
        ("exchange size", "repro_exchange_bytes", "B"),
    ]
    lines: list[str] = []
    for label, name, unit in rows:
        hist = registry[name]
        if hist.count == 0:
            continue
        pct = hist.percentiles()
        lines.append(
            f"  {label}: n={hist.count} mean={hist.mean:.4g}{unit} "
            f"p50={pct['p50']:.4g}{unit} p95={pct['p95']:.4g}{unit} "
            f"p99={pct['p99']:.4g}{unit}"
        )
    if lines:
        lines.insert(0, "latency/size percentiles:")
    return lines


# Back-compat-friendly short alias used by the CLI.
trace_report = render_trace_report
