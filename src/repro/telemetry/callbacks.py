"""Shipped callbacks: trace writing, timing, counting, progress.

The :class:`Callback` base mirrors LBANN's callback architecture: a
callback subscribes to a :class:`~repro.telemetry.events.TelemetryHub`
and receives every event, dispatched both generically (:meth:`on_event`)
and to per-type hooks (``on_step_end``, ``on_tournament``, ...).  Drivers
additionally call the :meth:`on_run_begin` / :meth:`on_run_end` lifecycle
hooks around a full run.
"""

from __future__ import annotations

import enum
import json
import sys
from typing import IO, Mapping

import numpy as np

from repro.telemetry.events import TelemetryEvent

__all__ = [
    "Callback",
    "JsonlTraceWriter",
    "WallClockTimer",
    "CounterAggregator",
    "ProgressLogger",
]


class Callback:
    """Base class for telemetry consumers.

    Subclasses override any subset of the per-type hooks (named
    ``on_<event type>``) and/or the catch-all :meth:`on_event`; both are
    called for every event, per-type hook first.
    """

    #: Set True (class- or instance-level) to request span tracing: a
    #: driver calls ``telemetry.start_tracing()`` when any attached
    #: callback wants spans.  Off by default — span instrumentation is
    #: a no-op branch in an untraced run.
    wants_spans = False

    def handle(self, event: TelemetryEvent) -> None:
        hook = getattr(self, f"on_{event.type}", None)
        if hook is not None:
            hook(event)
        self.on_event(event)

    # -- generic + lifecycle hooks ------------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        """Called for every event, after the per-type hook."""

    def on_run_begin(self, driver) -> None:
        """Called by a driver before its first round."""

    def on_run_end(self, driver, history) -> None:
        """Called by a driver after its last round (also on error exit)."""

    def on_run_error(self, driver, exc: BaseException) -> None:
        """Called by a driver when its round loop raises, *before*
        ``on_run_end`` — the last chance to capture in-flight state (the
        flight recorder dumps its post-mortem bundle here).  Exceptions
        from this hook are swallowed so they cannot mask ``exc``."""


def _jsonify(value):
    """Coerce payload values to JSON-encodable types."""
    if isinstance(value, enum.Enum):
        return _jsonify(value.value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


class JsonlTraceWriter(Callback):
    """Writes one JSON object per event to a trace file.

    The output is the interchange format of the subsystem.  The first
    line is a versioned **header record** —
    ``{"type": "trace_header", "version": ..., "created_unix": ...,
    "clock_origin_unix": ..., "run": {...}}`` — carrying the schema
    version, the wall-clock instant of the trace's ``time_s == 0``, and
    run metadata (driver class, population, backend, plus anything passed
    as ``metadata``).  Every following line is one event:
    ``{"type": ..., "time_s": ..., "sequence": ..., **payload}``,
    parseable with one ``json.loads`` per line; ``trace-report`` and
    ``trace-export`` validate the header and summarize the rest.

    Pass ``spans=True`` to request span tracing for the run the writer is
    attached to (sets :attr:`~Callback.wants_spans`; drivers enable the
    hub tracer when any attached callback asks).

    The file opens lazily on the first event and closes — with a
    guaranteed flush — on :meth:`on_run_end` (or an explicit
    :meth:`close`); the writer can also be used as a context manager.
    Closing a writer that never saw an event still produces a valid
    header-only trace.
    """

    #: Trace schema version; bumped when record shapes change
    #: incompatibly.  Version 1 traces (pre-header) are still readable —
    #: the header is optional on load — but new traces always carry one.
    SCHEMA_VERSION = 2

    def __init__(self, path, metadata: Mapping | None = None,
                 spans: bool = False) -> None:
        self.path = path
        self.metadata = dict(metadata) if metadata else {}
        self.wants_spans = bool(spans)
        self._fh: IO[str] | None = None
        self.events_written = 0
        self._mode = "w"
        self._run_meta: dict = {}

    def on_run_begin(self, driver) -> None:
        # Captured for the header; harmless if the file already opened
        # (events before run_begin only happen outside driver runs).
        self._run_meta = {
            "driver": type(driver).__name__,
            "rounds": getattr(driver.config, "rounds", None),
            "population": [t.name for t in driver.trainers],
            "backend": driver.backend.name,
            "workers": driver.backend.num_workers,
            "clock_origin_unix": driver.telemetry.wall_origin,
        }

    def _file(self) -> IO[str]:
        if self._fh is None:
            fresh = self._mode == "w"
            self._fh = open(self.path, self._mode, encoding="utf-8")
            # A straggler event after close() (e.g. from a still-running
            # prefetch thread) must append, not truncate the trace.
            self._mode = "a"
            if fresh:
                self._write_header()
        return self._fh

    def _write_header(self) -> None:
        import time as _time

        meta = dict(self._run_meta)
        header = {
            "type": "trace_header",
            "version": self.SCHEMA_VERSION,
            "created_unix": _time.time(),
            "clock_origin_unix": meta.pop("clock_origin_unix", None),
            "run": {**meta, **_jsonify(self.metadata)},
        }
        self._fh.write(json.dumps(header) + "\n")

    def on_event(self, event: TelemetryEvent) -> None:
        record = {
            "type": event.type,
            "time_s": round(event.time_s, 9),
            "sequence": event.sequence,
        }
        record.update(_jsonify(event.payload))
        self._file().write(json.dumps(record) + "\n")
        self.events_written += 1

    def on_run_end(self, driver, history) -> None:
        self.close()

    def close(self) -> None:
        """Flush and close; guarantees the header exists even for a run
        that produced no events."""
        if self._fh is None and self._mode == "w":
            self._file()
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class WallClockTimer(Callback):
    """Accumulates per-phase wall-clock time across a run.

    Phases are the driver's round structure — ``train``, ``tournament``,
    ``exchange``, ``eval`` — read from ``round_end`` events (the driver
    times each phase with a monotonic clock; this callback only sums).
    """

    PHASES = ("train", "tournament", "exchange", "eval")

    def __init__(self) -> None:
        self.totals: dict[str, float] = {phase: 0.0 for phase in self.PHASES}
        self.rounds = 0

    def on_round_end(self, event: TelemetryEvent) -> None:
        for phase in self.PHASES:
            self.totals[phase] += float(event.payload.get(f"{phase}_s", 0.0))
        self.rounds += 1

    @property
    def total_s(self) -> float:
        return sum(self.totals.values())

    def summary(self) -> str:
        parts = [f"{phase} {self.totals[phase]:.3f}s" for phase in self.PHASES]
        return (
            f"wall clock over {self.rounds} rounds: "
            + ", ".join(parts)
            + f" (total {self.total_s:.3f}s)"
        )


class CounterAggregator(Callback):
    """Folds event streams into run-level counters.

    Tracks exchange traffic, tournament adoption, datastore local/remote
    fetch counters (the per-batch deltas the store emits — the same fields
    as :class:`~repro.datastore.store.DataStoreStats`), checkpoint
    traffic, and step totals.  A store that is not wired to a hub can be
    folded in after the fact with :meth:`fold_datastore`.

    ``worker_train_s`` attributes trainer compute to execution-backend
    workers: per ``step_end`` event, ``elapsed_s`` is added under the key
    ``"{backend}/worker{worker}"``.  Events from traces written before
    backend attribution existed carry neither field and are skipped.

    ``fetch_stall`` events are folded the same way: per delivered batch,
    ``stall_s`` (the consumer's wait) accumulates into ``fetch_stall_s``
    and the hidden remainder ``max(0, materialize_s - stall_s)`` into
    ``fetch_overlap_s``, with per-worker breakdowns in ``worker_stall_s``
    / ``worker_overlap_s`` when the event carries backend attribution.
    """

    def __init__(self) -> None:
        self.exchange_bytes = 0
        self.exchanges = 0
        self.tournaments = 0
        self.adoptions = 0
        self.steps = 0
        self.rounds = 0
        self.worker_train_s: dict[str, float] = {}
        self.fetch_stalls = 0
        self.fetch_stall_s = 0.0
        self.fetch_overlap_s = 0.0
        self.worker_stall_s: dict[str, float] = {}
        self.worker_overlap_s: dict[str, float] = {}
        self.prefetch_fills = 0
        self._prefetch_fill_sum = 0
        self.datastore_local_fetches = 0
        self.datastore_remote_fetches = 0
        self.datastore_local_bytes = 0
        self.datastore_remote_bytes = 0
        self.checkpoint_saves = 0
        self.checkpoint_restores = 0
        self.checkpoint_bytes = 0

    # -- per-type folds ------------------------------------------------------

    def on_exchange(self, event: TelemetryEvent) -> None:
        self.exchanges += 1
        self.exchange_bytes += int(event.payload["nbytes"])

    def on_tournament(self, event: TelemetryEvent) -> None:
        self.tournaments += 1
        if event.payload["adopted"]:
            self.adoptions += 1

    def on_step_end(self, event: TelemetryEvent) -> None:
        self.steps += int(event.payload["steps"])
        backend = event.payload.get("backend")
        worker = event.payload.get("worker")
        if backend is not None and worker is not None:
            key = f"{backend}/worker{int(worker)}"
            self.worker_train_s[key] = (
                self.worker_train_s.get(key, 0.0)
                + float(event.payload.get("elapsed_s", 0.0))
            )

    def on_round_end(self, event: TelemetryEvent) -> None:
        self.rounds += 1

    def on_fetch_stall(self, event: TelemetryEvent) -> None:
        p = event.payload
        stall = float(p["stall_s"])
        overlap = max(0.0, float(p.get("materialize_s", stall)) - stall)
        self.fetch_stalls += 1
        self.fetch_stall_s += stall
        self.fetch_overlap_s += overlap
        backend = p.get("backend")
        worker = p.get("worker")
        if backend is not None and worker is not None:
            key = f"{backend}/worker{int(worker)}"
            self.worker_stall_s[key] = self.worker_stall_s.get(key, 0.0) + stall
            self.worker_overlap_s[key] = (
                self.worker_overlap_s.get(key, 0.0) + overlap
            )

    def on_prefetch_fill(self, event: TelemetryEvent) -> None:
        self.prefetch_fills += 1
        self._prefetch_fill_sum += int(event.payload.get("fill", 0))

    def on_datastore_fetch(self, event: TelemetryEvent) -> None:
        p = event.payload
        self.datastore_local_fetches += int(p["local_fetches"])
        self.datastore_remote_fetches += int(p["remote_fetches"])
        self.datastore_local_bytes += int(p["local_bytes"])
        self.datastore_remote_bytes += int(p["remote_bytes"])

    def on_checkpoint(self, event: TelemetryEvent) -> None:
        if event.payload["action"] == "save":
            self.checkpoint_saves += 1
        else:
            self.checkpoint_restores += 1
        self.checkpoint_bytes += int(event.payload["nbytes"])

    def fold_datastore(self, stats) -> None:
        """Add a :class:`~repro.datastore.store.DataStoreStats` snapshot
        (for stores that ran without a telemetry hub)."""
        self.datastore_local_fetches += stats.local_fetches
        self.datastore_remote_fetches += stats.remote_fetches
        self.datastore_local_bytes += stats.local_bytes
        self.datastore_remote_bytes += stats.remote_bytes

    # -- derived -------------------------------------------------------------

    def adoption_rate(self) -> float:
        """Fraction of tournament decisions that adopted the partner."""
        return self.adoptions / self.tournaments if self.tournaments else 0.0

    def remote_fetch_fraction(self) -> float:
        total = self.datastore_local_fetches + self.datastore_remote_fetches
        return self.datastore_remote_fetches / total if total else 0.0

    def mean_prefetch_fill(self) -> float:
        """Mean prefetch-queue occupancy observed at fill time."""
        return (
            self._prefetch_fill_sum / self.prefetch_fills
            if self.prefetch_fills
            else 0.0
        )

    def summary(self) -> dict[str, float]:
        """All counters plus derived rates, as one flat dict.

        Per-worker train seconds appear flattened as
        ``train_s[<backend>/worker<N>]`` keys (absent when no ``step_end``
        event carried backend attribution); per-worker data-path stall and
        overlap appear as ``stall_s[...]`` / ``overlap_s[...]`` keys."""
        per_worker = {
            f"train_s[{key}]": seconds
            for key, seconds in sorted(self.worker_train_s.items())
        }
        per_worker.update(
            {
                f"stall_s[{key}]": seconds
                for key, seconds in sorted(self.worker_stall_s.items())
            }
        )
        per_worker.update(
            {
                f"overlap_s[{key}]": seconds
                for key, seconds in sorted(self.worker_overlap_s.items())
            }
        )
        return {
            "rounds": self.rounds,
            "steps": self.steps,
            "exchanges": self.exchanges,
            "exchange_bytes": self.exchange_bytes,
            "tournaments": self.tournaments,
            "adoptions": self.adoptions,
            "adoption_rate": self.adoption_rate(),
            "fetch_stalls": self.fetch_stalls,
            "fetch_stall_s": self.fetch_stall_s,
            "fetch_overlap_s": self.fetch_overlap_s,
            "prefetch_fills": self.prefetch_fills,
            "prefetch_mean_fill": self.mean_prefetch_fill(),
            "datastore_local_fetches": self.datastore_local_fetches,
            "datastore_remote_fetches": self.datastore_remote_fetches,
            "datastore_local_bytes": self.datastore_local_bytes,
            "datastore_remote_bytes": self.datastore_remote_bytes,
            "remote_fetch_fraction": self.remote_fetch_fraction(),
            "checkpoint_saves": self.checkpoint_saves,
            "checkpoint_restores": self.checkpoint_restores,
            "checkpoint_bytes": self.checkpoint_bytes,
            **per_worker,
        }


class ProgressLogger(Callback):
    """Prints a one-line summary per round (the ``on_round`` replacement).

    Shows the round index, the train-phase time, and — when the driver
    evaluates on a global batch — the population-best value of ``metric``.
    ``health`` events (from a :class:`~repro.telemetry.health.
    HealthMonitor` subscribed alongside) print as indented ``health:``
    lines under the round they surfaced in; any still pending at run end
    (e.g. raised by the final round's own ``round_end`` processing) are
    flushed then.
    """

    def __init__(self, stream: IO[str] | None = None, metric: str = "val_loss") -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.metric = metric
        self._last_eval: Mapping | None = None
        self._total_rounds: int | None = None
        self._pending_health: list[str] = []

    def on_run_begin(self, driver) -> None:
        self._total_rounds = driver.config.rounds

    def on_eval(self, event: TelemetryEvent) -> None:
        # Quality-probe EVAL events carry ``divergence`` instead of
        # ``metrics``; the round line only renders driver eval snapshots.
        metrics = event.payload.get("metrics")
        if metrics is not None:
            self._last_eval = metrics

    def on_health(self, event: TelemetryEvent) -> None:
        p = event.payload
        self._pending_health.append(
            f"  health[{p.get('severity', 'warning')}] "
            f"{p.get('kind', '?')}: {p.get('message', '')}"
        )

    def on_round_end(self, event: TelemetryEvent) -> None:
        r = event.payload["round"]
        label = f"round {r}" if self._total_rounds is None else (
            f"round {r + 1}/{self._total_rounds}"
        )
        line = f"[{label}] train {event.payload['train_s']:.2f}s"
        if self._last_eval is not None:
            best = min(m[self.metric] for m in self._last_eval.values())
            line += f", best {self.metric} {best:.4f}"
            self._last_eval = None
        print(line, file=self.stream)
        self._flush_health()

    def on_run_end(self, driver, history) -> None:
        self._flush_health()

    def _flush_health(self) -> None:
        for line in self._pending_health:
            print(line, file=self.stream)
        self._pending_health.clear()
