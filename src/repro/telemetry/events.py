"""Typed telemetry events and the hub that routes them.

LBANN structures run-time observability as callbacks attached to the
training loop; every figure of the paper (7-13) is a trace of exactly the
quantities those callbacks record — per-round losses, tournament outcomes,
datastore fetch counters, wall-clock phase timings.  This module is the
transport layer of that design: instrumented components (drivers,
trainers, the data store, checkpointing) ``emit`` events into a
:class:`TelemetryHub`, and :class:`~repro.telemetry.callbacks.Callback`
subscribers consume them.

Events are *typed*: every event carries one of the names in
:data:`EVENT_TYPES` and a structured payload whose shape is fixed per
type (documented on the constants below).  Emitting an unknown type is an
error — consumers should be able to switch on ``event.type`` exhaustively.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "STEP_END",
    "ROUND_END",
    "PAIRING",
    "TOURNAMENT",
    "EXCHANGE",
    "EVAL",
    "DATASTORE_FETCH",
    "INGEST",
    "FETCH_STALL",
    "PREFETCH_FILL",
    "CHECKPOINT",
    "SPAN",
    "HEALTH",
    "ALERT",
    "SERVE",
    "RESOURCE_SAMPLE",
    "EVENT_TYPES",
    "TelemetryEvent",
    "TelemetryHub",
]

#: One trainer finished a ``train_steps`` interval.  Payload: ``trainer``,
#: ``steps``, ``steps_done``, ``losses`` (mean loss terms), ``elapsed_s``,
#: plus ``backend`` (execution backend name) and ``worker`` (which worker
#: slot ran the interval; always 0 under the serial backend).
STEP_END = "step_end"

#: A driver finished one (train, tournament, eval) round.  Payload:
#: ``round`` plus per-phase wall-clock seconds ``train_s``,
#: ``tournament_s``, ``exchange_s``, ``eval_s``, plus ``backend`` and
#: ``workers`` (the execution backend and its worker count).
ROUND_END = "round_end"

#: A population topology planned who exchanges with whom this round.
#: Payload: ``round``, ``topology`` (the topology name), ``pairs`` (list of
#: ``[trainer_a, trainer_b]`` name pairs), ``bye`` (names sitting the round
#: out — deterministic per topology), and ``neighborhoods`` (per-pair
#: locality labels, ``None`` entries for topologies without spatial
#: structure).  Synchronous topologies emit it before their tournaments;
#: barrier-free ones emit it at round end, once the pairing order is known.
PAIRING = "pairing"

#: One trainer judged one pairwise tournament.  Payload: ``round``,
#: ``trainer``, ``partner``, ``own_score``, ``partner_score``, ``adopted``,
#: plus ``topology`` (which topology held the tournament) and
#: ``neighborhood`` (the judging trainer's locality label, ``None`` for
#: non-spatial topologies).
TOURNAMENT = "tournament"

#: One model-exchange transfer between a pair of trainers.  Payload:
#: ``round``, ``trainer_a``, ``trainer_b``, ``scope``, ``nbytes``, plus
#: ``topology``/``neighborhood`` attribution like ``tournament`` events.
EXCHANGE = "exchange"

#: The population was evaluated.  Two producers share the type, told
#: apart by payload shape: the driver's global-validation pass carries
#: ``round``, ``metrics`` (per-trainer metric dicts), ``elapsed_s``; a
#: :class:`~repro.eval.QualityProbe` pass carries ``round``,
#: ``divergence`` (per-trainer divergence dicts — ``kl``/``js``/
#: ``hellinger``/``mean_delta``/``std_delta``), ``metric`` (the probe's
#: ranking metric) and ``elapsed_s``.
EVAL = "eval"

#: The data store assembled one mini-batch.  Payload: ``batch_size``,
#: ``local_fetches``, ``remote_fetches``, ``local_bytes``,
#: ``remote_bytes`` — per-batch deltas of
#: :class:`~repro.datastore.store.DataStoreStats`.
DATASTORE_FETCH = "datastore_fetch"

#: A :class:`~repro.ingest.StreamingSource` finished one between-rounds
#: ingestion poll.  Payload: ``round`` (``None`` for priming polls),
#: ``admitted`` (samples admitted into the universe this poll),
#: ``evicted`` (channel retention + stale evictions this poll, of which
#: ``stale`` aged out), ``store_evictions`` (store LRU evictions this
#: poll, summed across attached stores), ``depth`` (channel occupancy
#: after draining), ``cursor`` (monotonic channel drain cursor),
#: ``universe_version``/``universe_size`` (the sample universe after the
#: poll), ``producer_lag`` (samples published but not yet drained, drops
#: included), ``store_occupancy`` (max per-rank occupancy fraction
#: across attached stores, 0.0 with no stores), ``paused`` (whether the
#: channel's high-watermark backpressure was engaged after the pump,
#: before draining) and ``channel_occupancy`` (pre-drain channel depth
#: as a fraction of its capacity).
INGEST = "ingest"

#: A data pipeline delivered one batch to its consumer.  Payload:
#: ``depth`` (prefetch depth, 0 = synchronous), ``epoch``/``step`` (the
#: planned batch delivered), ``stall_s`` (how long the consumer waited for
#: the batch — the data path's contribution to step latency) and
#: ``materialize_s`` (how long building the batch actually took; at depth
#: >= 1 the difference is work hidden behind training compute).  When the
#: pipeline serves a trainer the event also carries ``trainer``,
#: ``backend`` and ``worker``.
FETCH_STALL = "fetch_stall"

#: A prefetching pipeline's background thread finished materializing one
#: batch ahead of the consumer.  Payload: ``depth``, ``fill`` (queue
#: occupancy after the insert), ``epoch``/``step``, ``materialize_s``,
#: plus ``trainer``/``backend``/``worker`` when serving a trainer.
PREFETCH_FILL = "prefetch_fill"

#: A trainer checkpoint was written or restored.  Payload: ``action``
#: (``"save"`` or ``"restore"``), ``trainer``, ``nbytes``.
CHECKPOINT = "checkpoint"

#: One closed profiling span from a :class:`~repro.telemetry.spans.Tracer`
#: (only present when tracing is enabled — see :meth:`TelemetryHub.
#: start_tracing`).  Payload: ``name``, ``cat`` (coarse category:
#: run/round/phase/train/step/data/exchange/eval/serve), ``track`` (the
#: timeline lane
#: the span renders on), ``t0_s`` (start, seconds since the hub epoch),
#: ``dur_s``, ``id``, optional ``parent`` (enclosing span id) and
#: ``attrs`` (site-specific annotations).
SPAN = "span"

#: A :class:`~repro.telemetry.health.HealthMonitor` flagged a run-health
#: problem.  Payload: ``kind`` (``nan_loss``/``divergence``/
#: ``winrate_collapse``/``stall_regression``/``quality_collapse``, plus
#: serve-side kinds like ``quality_gate_refusal``), ``severity``
#: (``"warning"``/``"critical"``), ``round``, ``trainer`` (may be
#: ``None``), ``message``.
HEALTH = "health"

#: The live observability plane (:mod:`repro.telemetry.live`) fired a
#: typed alert: an anomaly detector tripped, a worker fast-flagged a
#: non-finite loss, or a rollup crossed a configured threshold.  Payload:
#: ``kind`` (e.g. ``step_time_anomaly``/``stall_spike``/
#: ``stall_regression``/``nan_loss``/``ingest_backpressure``/
#: ``serve_slo_burn``/``quality_collapse``), ``severity``
#: (``"warning"``/``"critical"``),
#: ``source`` (subsystem: ``train``/``data``/``ingest``/``serve``/
#: ``exchange``), ``round`` (may be ``None`` outside a campaign),
#: ``trainer`` (may be ``None``), ``message``, ``value``/``threshold``
#: (the observed reading and the limit it crossed, ``None`` when a
#: detector has no scalar form) and ``origin`` (``"live"`` for the
#: driver-side engine, ``"worker"`` for alerts relayed from execution
#: workers).
ALERT = "alert"

#: The surrogate server executed one micro-batch.  Payload: ``size``
#: (requests in the batch), ``queue_depth`` (after the batch drained),
#: ``forward_s`` (model forward time), ``wait_s`` (mean queue wait across
#: the batch's requests) and ``version`` (the model version that served
#: it).  Only emitted when the server is built over a telemetry hub.
SERVE = "serve"

#: A point-in-time resource reading of one process (see
#: :mod:`repro.telemetry.resources`).  Payload: ``source`` (``"driver"``
#: or ``"worker<k>"`` — which process was sampled), ``rss_bytes``
#: (current resident set, 0 where the platform hides it),
#: ``peak_rss_bytes`` (lifetime high-water mark), ``cpu_user_s`` /
#: ``cpu_system_s`` (cumulative CPU seconds), plus ``backend``/``worker``
#: when an execution backend produced the sample.  Worker-process samples
#: are relayed to the driver's hub like spans are.
RESOURCE_SAMPLE = "resource_sample"

EVENT_TYPES = frozenset(
    {
        STEP_END,
        ROUND_END,
        PAIRING,
        TOURNAMENT,
        EXCHANGE,
        EVAL,
        DATASTORE_FETCH,
        INGEST,
        FETCH_STALL,
        PREFETCH_FILL,
        CHECKPOINT,
        SPAN,
        HEALTH,
        ALERT,
        SERVE,
        RESOURCE_SAMPLE,
    }
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured observation from an instrumented component.

    ``time_s`` is seconds since the hub was created (monotonic clock), so
    traces order and difference cleanly; ``sequence`` is a per-hub counter
    that breaks timestamp ties.
    """

    type: str
    payload: Mapping[str, object] = field(default_factory=dict)
    time_s: float = 0.0
    sequence: int = 0


class TelemetryHub:
    """Routes events from instrumented components to subscribed callbacks.

    A hub with no subscribers is effectively free: :meth:`emit` returns
    before constructing the event, so permanently-attached instrumentation
    costs nothing when nobody is listening.
    """

    def __init__(self) -> None:
        self.callbacks: list = []
        self._sequence = 0
        self._t0 = time.perf_counter()
        # The wall-clock reading at the hub epoch (the instant time_s == 0).
        # Tracers inherit it so span timelines from other processes can be
        # aligned to this hub's axis (monotonic clocks are per-process).
        self.wall_origin = time.time()
        # Span production is opt-in: None until start_tracing() is called
        # (drivers call it when an attached callback wants_spans), so the
        # permanent instrumentation's `tracer is None` check is all an
        # untraced run ever pays.
        self.tracer = None
        # A prefetching pipeline emits from its background thread while the
        # consumer emits from the training thread; serialize dispatch so
        # callbacks never observe interleaved partial updates.  Reentrant:
        # a callback may itself emit.
        self._lock = threading.RLock()

    def subscribe(self, callback) -> None:
        """Attach a callback (idempotent)."""
        if callback not in self.callbacks:
            self.callbacks.append(callback)

    def unsubscribe(self, callback) -> None:
        """Detach a callback; unknown callbacks are ignored."""
        if callback in self.callbacks:
            self.callbacks.remove(callback)

    @property
    def active(self) -> bool:
        """True when at least one callback is subscribed."""
        return bool(self.callbacks)

    def start_tracing(self):
        """Enable span production into this hub (idempotent).

        Returns the hub's :class:`~repro.telemetry.spans.Tracer`, created
        on first call with the hub's own clock epoch so span ``t0_s``
        values share the axis of :attr:`TelemetryEvent.time_s`.
        """
        if self.tracer is None:
            from repro.telemetry.spans import Tracer

            self.tracer = Tracer(
                self, epoch=self._t0, wall_origin=self.wall_origin
            )
        return self.tracer

    def emit(self, event_type: str, /, **payload) -> TelemetryEvent | None:
        """Dispatch one event to every subscriber.

        Returns the event, or ``None`` when there were no subscribers
        (the cheap path).  Raises ``ValueError`` on unknown event types so
        typos fail at the emit site, not silently downstream.
        """
        if event_type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event_type!r}; "
                f"expected one of {sorted(EVENT_TYPES)}"
            )
        if not self.callbacks:
            return None
        with self._lock:
            event = TelemetryEvent(
                type=event_type,
                payload=payload,
                time_s=time.perf_counter() - self._t0,
                sequence=self._sequence,
            )
            self._sequence += 1
            for callback in list(self.callbacks):
                callback.handle(event)
        return event
