"""Metrics registry: counters, gauges, fixed-bucket histograms.

Aggregates (PR 1's :class:`~repro.telemetry.callbacks.CounterAggregator`)
answer "how much, in total"; this module answers "how is it
*distributed*" — the p50/p95/p99 of step time, fetch latency, stall
duration, and exchange bytes that the paper's scaling analysis turns on.
Histograms use fixed buckets (Prometheus-style): observation is O(log
buckets) with bounded memory, percentiles are linearly interpolated
within the bucket that crosses the target rank and clamped to the
observed min/max, so tails are never reported outside the data.

Two consumers:

- :class:`MetricsCollector` — a live :class:`~repro.telemetry.callbacks.
  Callback` folding the event stream into a :class:`MetricsRegistry`
  (attach to ``driver.run``; export with :meth:`MetricsRegistry.to_json`
  or :meth:`MetricsRegistry.render_prometheus`);
- :func:`collect_metrics` — the offline equivalent over a loaded trace,
  used by ``trace-report`` for its percentile tables.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Iterable, Sequence

from repro.telemetry.callbacks import Callback

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsCollector",
    "collect_metrics",
    "TIME_BUCKETS",
    "BYTE_BUCKETS",
]

#: Default latency buckets (seconds): geometric 1-2.5-5 ladder from 10 µs
#: to 60 s — wide enough for both in-memory materialization (tens of µs)
#: and real multi-second train intervals.
TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default size buckets (bytes): powers of four from 1 KiB to 1 GiB.
BYTE_BUCKETS: tuple[float, ...] = tuple(
    float(4**i * 1024) for i in range(10)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r} (must match {_NAME_RE.pattern})"
        )
    return name


def _check_labels(labels) -> tuple[tuple[str, str], ...]:
    """Canonicalize a label mapping: sorted, string-valued, validated names.

    Sorting is the determinism guarantee — two metrics created with the
    same labels in different insertion orders are the same time series,
    and export rows never depend on dict ordering.
    """
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(
                f"invalid label name {key!r} (must match {_LABEL_RE.pattern})"
            )
        items.append((key, str(labels[key])))
    return tuple(items)


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: tuple[tuple[str, str], ...], extra=()) -> str:
    """Render ``{k="v",...}`` (empty string for an unlabeled metric).

    ``extra`` pairs append after the sorted labels — used for the ``le``
    bound on histogram bucket rows, which conventionally renders last.
    """
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt_num(value: float) -> str:
    """Prometheus sample value formatting (ints stay integral)."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.10g}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels=None) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def to_json(self):
        return self.value


class Gauge:
    """A value that goes up and down (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels=None) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def to_json(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries.

    ``buckets`` are strictly increasing upper bounds; an implicit +Inf
    bucket catches overflow.  :meth:`quantile` finds the bucket whose
    cumulative count crosses ``q * count`` and interpolates linearly
    within its bounds, clamped to the observed min/max — exact at the
    extremes, bucket-resolution in between.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = TIME_BUCKETS,
                 labels=None) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram {name}: buckets must be non-empty and strictly "
                f"increasing, got {buckets!r}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow bucket
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile (``q`` in [0, 1]); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = (
                    self.buckets[i] if i < len(self.buckets) else self._max
                )
                within = (target - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, within))
                return min(max(estimate, self._min), self._max)
        return self._max

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 summary."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_json(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self._min,
            "max": None if self.count == 0 else self._max,
            "mean": None if self.count == 0 else self.mean,
            "buckets": [
                {"le": le, "count": c}
                for le, c in zip(
                    [*self.buckets, math.inf], _cumulative(self.counts)
                )
            ],
            **{
                k: (None if math.isnan(v) else v)
                for k, v in self.percentiles().items()
            },
        }


def _cumulative(counts: Iterable[int]) -> list[int]:
    out, total = [], 0
    for c in counts:
        total += c
        out.append(total)
    return out


class MetricsRegistry:
    """Get-or-create registry of named metrics, exportable as JSON and
    Prometheus text exposition format.

    Metrics may carry labels; ``(name, sorted labels)`` identifies a time
    series, and all series under one name form a *family* that must share
    one kind.  Export is deterministic: families render in name order,
    series within a family in label order, so two exports of equal state
    are byte-identical regardless of registration order.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}

    def _get_or_create(self, cls, name: str, help: str, labels=None, **kwargs):
        key = (name, _check_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            family_kind = self._kinds.get(name)
            if family_kind is not None and family_kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family_kind}, "
                    f"not {cls.kind}"
                )
            metric = self._metrics[key] = cls(
                name, help, labels=labels, **kwargs
            )
            self._kinds[name] = cls.kind
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", labels=None) -> Counter:
        return self._get_or_create(Counter, name, help, labels=labels)

    def gauge(self, name: str, help: str = "", labels=None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels=labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = TIME_BUCKETS,
                  labels=None) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels=labels, buckets=buckets
        )

    def __iter__(self):
        return iter(self._metrics.values())

    def __getitem__(self, name: str):
        return self._metrics[(name, ())]

    def __contains__(self, name: str) -> bool:
        return (name, ()) in self._metrics

    def series(self, name: str) -> list:
        """Every registered series of one family, in label order."""
        members = [m for m in self if m.name == name]
        members.sort(key=lambda m: _label_str(m.labels))
        return members

    def to_json(self) -> dict:
        """``{kind: {name: value-or-summary}}``, JSON-encodable.

        Labeled series key as ``name{k="v",...}`` so one family's series
        stay distinguishable; unlabeled metrics keep their bare name.
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in sorted(
            self, key=lambda m: (m.name, _label_str(m.labels))
        ):
            key = metric.name + _label_str(metric.labels)
            out[metric.kind + "s"][key] = metric.to_json()
        return out

    def render_prometheus(self) -> str:
        """The text exposition format.

        One HELP/TYPE block per *family*, every series of the family
        under it; families sorted by name, series by rendered labels,
        label values escaped — deterministic byte-for-byte.
        """
        families: dict[str, list] = {}
        for metric in self:
            families.setdefault(metric.name, []).append(metric)
        lines: list[str] = []
        for name in sorted(families):
            members = sorted(
                families[name], key=lambda m: _label_str(m.labels)
            )
            help = next((m.help for m in members if m.help), "")
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {members[0].kind}")
            for metric in members:
                labels = _label_str(metric.labels)
                if isinstance(metric, Histogram):
                    cumulative = _cumulative(metric.counts)
                    for le, c in zip([*metric.buckets, math.inf], cumulative):
                        bucket = _label_str(
                            metric.labels, extra=(("le", _fmt_num(le)),)
                        )
                        lines.append(f"{name}_bucket{bucket} {c}")
                    lines.append(f"{name}_sum{labels} {_fmt_num(metric.sum)}")
                    lines.append(f"{name}_count{labels} {metric.count}")
                else:
                    lines.append(f"{name}{labels} {_fmt_num(metric.value)}")
        return "\n".join(lines) + "\n"


class MetricsCollector(Callback):
    """A callback folding the event stream into a :class:`MetricsRegistry`.

    Registers the subsystem's standard metrics up front (so exports have
    stable shape even before events arrive): step-time / fetch-latency /
    stall-duration / exchange-bytes histograms plus run counters.  One
    collector can observe several runs — the experiments CLI shares one
    across every figure it trains for a campaign-level snapshot.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.step_time = r.histogram(
            "repro_step_time_seconds",
            "per-step train time (interval elapsed / steps)",
        )
        self.fetch_latency = r.histogram(
            "repro_fetch_latency_seconds",
            "per-batch materialization latency",
        )
        self.stall = r.histogram(
            "repro_fetch_stall_seconds",
            "consumer wait per delivered batch",
        )
        self.exchange_size = r.histogram(
            "repro_exchange_bytes",
            "bytes moved per pairwise model exchange",
            buckets=BYTE_BUCKETS,
        )
        self.steps = r.counter("repro_steps_total", "optimizer steps taken")
        self.rounds = r.counter("repro_rounds_total", "rounds completed")
        self.tournaments = r.counter(
            "repro_tournaments_total", "pairwise tournament judgements"
        )
        self.adoptions = r.counter(
            "repro_adoptions_total", "tournaments that adopted the partner"
        )
        self.exchange_bytes = r.counter(
            "repro_exchange_bytes_total", "total model-exchange traffic"
        )
        self.local_fetches = r.counter(
            "repro_datastore_local_fetches_total",
            "store fetches served from the local shard",
        )
        self.remote_fetches = r.counter(
            "repro_datastore_remote_fetches_total",
            "store fetches served from a remote shard",
        )
        self.health_warnings = r.counter(
            "repro_health_warnings_total", "health-monitor warnings raised"
        )
        self.prefetch_fill = r.gauge(
            "repro_prefetch_queue_fill",
            "prefetch queue occupancy at the last background fill",
        )
        # Streaming-ingestion metrics (fed by ingest events; see
        # repro.ingest).  The event payload carries per-poll deltas plus
        # live channel/store readings, so the collector needs no
        # cross-poll bookkeeping of its own.
        self.ingest_admitted = r.counter(
            "repro_ingest_admitted_total",
            "streamed samples admitted into the sample universe",
        )
        self.ingest_evicted = r.counter(
            "repro_ingest_evicted_total",
            "streamed samples evicted from the ingest channel "
            "(retention displacement + stale aging)",
        )
        self.ingest_depth = r.gauge(
            "repro_ingest_channel_depth",
            "ingest channel occupancy after the last poll",
        )
        self.ingest_lag = r.gauge(
            "repro_ingest_producer_lag",
            "published-but-undrained samples after the last poll",
        )
        self.store_occupancy = r.gauge(
            "repro_store_occupancy",
            "distributed-store cache occupancy fraction at the last poll",
        )
        self.store_evictions = r.counter(
            "repro_store_evictions_total",
            "LRU evictions across distributed-store ranks",
        )
        # Resource gauges (fed by resource_sample events; see
        # repro.telemetry.resources).  Peak RSS keeps max semantics across
        # samples — a gauge because it can span several processes' peaks.
        self.rss = r.gauge(
            "repro_rss_bytes", "resident set size at the last sample"
        )
        self.peak_rss = r.gauge(
            "repro_peak_rss_bytes",
            "peak resident set size over all sampled processes",
        )
        self.cpu_seconds = r.gauge(
            "repro_cpu_seconds",
            "cumulative user+system CPU seconds at the last sample",
        )

    # -- per-type folds ------------------------------------------------------

    def on_step_end(self, event) -> None:
        p = event.payload
        steps = int(p.get("steps", 1)) or 1
        self.steps.inc(steps)
        elapsed = p.get("elapsed_s")
        if elapsed is not None:
            # One observation per interval: the mean per-step time.  Per-step
            # clocks would perturb the thing being measured.
            self.step_time.observe(float(elapsed) / steps)

    def on_round_end(self, event) -> None:
        self.rounds.inc()

    def on_tournament(self, event) -> None:
        self.tournaments.inc()
        if event.payload.get("adopted"):
            self.adoptions.inc()

    def on_exchange(self, event) -> None:
        nbytes = int(event.payload.get("nbytes", 0))
        self.exchange_bytes.inc(nbytes)
        self.exchange_size.observe(nbytes)

    def on_fetch_stall(self, event) -> None:
        p = event.payload
        self.stall.observe(float(p.get("stall_s", 0.0)))
        materialize = p.get("materialize_s")
        if materialize is not None:
            self.fetch_latency.observe(float(materialize))

    def on_prefetch_fill(self, event) -> None:
        self.prefetch_fill.set(int(event.payload.get("fill", 0)))

    def on_datastore_fetch(self, event) -> None:
        p = event.payload
        self.local_fetches.inc(int(p.get("local_fetches", 0)))
        self.remote_fetches.inc(int(p.get("remote_fetches", 0)))

    def on_health(self, event) -> None:
        self.health_warnings.inc()

    def on_ingest(self, event) -> None:
        p = event.payload
        self.ingest_admitted.inc(int(p.get("admitted", 0)))
        self.ingest_evicted.inc(int(p.get("evicted", 0)))
        self.store_evictions.inc(int(p.get("store_evictions", 0)))
        self.ingest_depth.set(int(p.get("depth", 0)))
        self.ingest_lag.set(int(p.get("producer_lag", 0)))
        self.store_occupancy.set(float(p.get("store_occupancy", 0.0)))

    def on_resource_sample(self, event) -> None:
        p = event.payload
        self.rss.set(float(p.get("rss_bytes", 0)))
        self.peak_rss.set(
            max(self.peak_rss.value, float(p.get("peak_rss_bytes", 0)))
        )
        self.cpu_seconds.set(
            float(p.get("cpu_user_s", 0.0)) + float(p.get("cpu_system_s", 0.0))
        )


def collect_metrics(events: Iterable) -> MetricsRegistry:
    """Fold loaded trace events into a fresh registry (offline path)."""
    collector = MetricsCollector()
    for event in events:
        collector.handle(event)
    return collector.registry


def render_metrics(registry: MetricsRegistry, fmt: str = "prometheus") -> str:
    """One registry snapshot as text: ``"prometheus"`` exposition format
    or ``"json"``.  The single rendering path shared by
    :func:`write_metrics` and the serve status endpoint's ``/metrics``
    scrape."""
    import json

    if fmt == "prometheus":
        return registry.render_prometheus()
    if fmt == "json":
        return json.dumps(registry.to_json(), indent=2) + "\n"
    raise ValueError(f"unknown metrics format {fmt!r}")


def write_metrics(registry: MetricsRegistry, path) -> None:
    """Write a registry snapshot to ``path``, atomically.

    The format follows the suffix: ``.prom``/``.txt`` get the Prometheus
    text exposition format, anything else JSON.  Publication is
    tmp + ``os.replace`` (the :class:`~repro.core.checkpoint.
    CheckpointStore` pattern), so a scraper polling the path never reads
    a half-written snapshot — it sees the previous complete file or the
    new complete file, nothing in between.
    """
    import os
    from pathlib import Path

    path = Path(path)
    fmt = "prometheus" if path.suffix in (".prom", ".txt") else "json"
    text = render_metrics(registry, fmt)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


__all__.append("render_metrics")
__all__.append("write_metrics")
