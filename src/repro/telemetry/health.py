"""Run-health monitoring: detect the known failure modes of population
GAN training before a campaign burns its allocation.

Population training at the paper's scale fails in characteristic ways:

- **NaN / diverging losses** — a GAN trainer's adversarial loss blows up
  (bad hyperparameter draw, optimizer state adopted across models);
- **win-rate collapse** — one generator sweeps every tournament, so the
  population degenerates to redundant copies and LTFB's diversity
  advantage (Fig. 13) is gone;
- **stall regressions** — the data path dominates step time (store
  misconfiguration, prefetch depth 0 on a slow reader), i.e. the exact
  condition the paper's data store exists to prevent;
- **quality collapse** — a generator's output *distribution* degenerates
  (mode collapse) while its losses stay flat or keep improving, the one
  failure mode loss-based checks cannot see.  Detected from the
  ``divergence`` payloads a :class:`~repro.eval.QualityProbe` emits:
  flagged when a trainer's divergence blows past a multiple of the best
  value it had reached, critical when its training loss improved or held
  over the same stretch.

:class:`HealthMonitor` is a :class:`~repro.telemetry.callbacks.Callback`
that watches the event stream for all three, records structured
:class:`HealthWarning` rows, re-emits them as ``health`` telemetry events
(so :class:`~repro.telemetry.callbacks.ProgressLogger` can print them
in-line and traces keep them), and copies them into
``History.health_warnings`` at run end for offline analysis and the
experiments reports.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.telemetry.callbacks import Callback
from repro.telemetry.events import HEALTH, TelemetryEvent

__all__ = ["HealthWarning", "HealthMonitor"]


@dataclass(frozen=True)
class HealthWarning:
    """One flagged run-health problem."""

    # "nan_loss" | "divergence" | "winrate_collapse" | "stall_regression"
    # | "quality_collapse" (plus live/serve kinds; see events.HEALTH)
    kind: str
    round_index: int
    trainer: str | None
    message: str
    severity: str = "warning"  # or "critical"

    def render(self) -> str:
        return f"[{self.severity}] {self.kind}: {self.message}"


class HealthMonitor(Callback):
    """Flags NaN/diverging losses, tournament win-rate collapse, and
    stall-fraction regressions.

    Parameters
    ----------
    divergence_factor:
        A trainer's loss term counts as diverging when it exceeds this
        multiple of the best (lowest) value that term has reached at that
        trainer.  Generous by design: GAN losses oscillate.
    collapse_window:
        How many recent rounds of tournament decisions the win-rate check
        looks at.
    collapse_share:
        Flag when a single trainer won at least this fraction of all
        adoptions in the window (and adoption happened at all).
    collapse_min_adoptions:
        Minimum adoptions in the window before the share is meaningful.
    neighborhood_min_adoptions:
        Like ``collapse_min_adoptions``, but for the per-neighborhood
        check: tournament events from spatial topologies (cellular grids)
        carry a ``neighborhood`` label, and a neighborhood adopts at most
        once per round, so its threshold must be reachable within the
        window.  One trainer sweeping a single grid cell is an early,
        local signal of the population-wide collapse.
    stall_fraction_threshold:
        Flag a round whose summed fetch stall exceeds this fraction of the
        train phase (the data path dominates compute).
    warmup_rounds:
        Rounds exempt from the stall check (first-epoch ingest is
        expected to stall — that is the paper's Fig. 10 initial epoch).
    quality_factor:
        Flag ``quality_collapse`` when a trainer's probed divergence
        exceeds this multiple of the best (lowest) value it has reached.
        Generous like ``divergence_factor``: early divergence estimates
        wobble while the generator finds the support.
    quality_min_points:
        Probe readings required per trainer before the factor check is
        meaningful (the first readings define the floor).

    Each (kind, trainer, neighborhood) triple is flagged at most once per
    run, so a sick trainer does not flood the log, while a local
    (neighborhood) collapse never suppresses the population-wide flag.
    """

    def __init__(
        self,
        divergence_factor: float = 20.0,
        collapse_window: int = 5,
        collapse_share: float = 0.9,
        collapse_min_adoptions: int = 6,
        neighborhood_min_adoptions: int = 4,
        stall_fraction_threshold: float = 0.5,
        warmup_rounds: int = 1,
        quality_factor: float = 3.0,
        quality_min_points: int = 2,
    ) -> None:
        self.divergence_factor = float(divergence_factor)
        self.collapse_window = int(collapse_window)
        self.collapse_share = float(collapse_share)
        self.collapse_min_adoptions = int(collapse_min_adoptions)
        self.neighborhood_min_adoptions = int(neighborhood_min_adoptions)
        self.stall_fraction_threshold = float(stall_fraction_threshold)
        self.warmup_rounds = int(warmup_rounds)
        self.quality_factor = float(quality_factor)
        self.quality_min_points = int(quality_min_points)
        self.warnings: list[HealthWarning] = []
        self._hub = None
        self._flagged: set[tuple[str, str | None, str | None]] = set()
        # Best (lowest finite) value seen per (trainer, loss term).
        self._loss_floor: dict[tuple[str, str], float] = {}
        self._round = 0
        # Win-rate window: per-round {group: {winner: adoptions}} maps,
        # where group None is the whole population and named groups are
        # topology neighborhoods (every adoption counts toward both).
        self._win_rounds: deque[dict[str | None, dict[str, int]]] = deque(
            maxlen=self.collapse_window
        )
        self._round_wins: dict[str | None, dict[str, int]] = {}
        self._round_stall_s = 0.0
        # Quality-collapse state: per trainer, the best (lowest) probed
        # divergence, how many probe points have landed, the last finite
        # mean step loss, and the loss reading at the divergence floor.
        self._div_floor: dict[str, float] = {}
        self._div_points: dict[str, int] = {}
        self._last_loss: dict[str, float] = {}
        self._loss_at_floor: dict[str, float] = {}

    # -- lifecycle -----------------------------------------------------------

    def on_run_begin(self, driver) -> None:
        self._hub = driver.telemetry

    def on_run_end(self, driver, history) -> None:
        if hasattr(history, "health_warnings"):
            history.health_warnings.extend(self.warnings)
        self._hub = None

    # -- event folds ---------------------------------------------------------

    def on_step_end(self, event: TelemetryEvent) -> None:
        trainer = event.payload.get("trainer")
        losses = event.payload.get("losses") or {}
        finite = [
            float(v) for v in losses.values() if math.isfinite(float(v))
        ]
        if finite and trainer is not None:
            self._last_loss[str(trainer)] = sum(finite) / len(finite)
        for term, value in losses.items():
            value = float(value)
            if not math.isfinite(value):
                self._warn(
                    "nan_loss",
                    trainer,
                    f"trainer {trainer}: loss term {term!r} is {value}",
                    severity="critical",
                )
                continue
            key = (str(trainer), str(term))
            floor = self._loss_floor.get(key)
            if floor is None or value < floor:
                self._loss_floor[key] = value
            elif floor > 0 and value > self.divergence_factor * floor:
                self._warn(
                    "divergence",
                    trainer,
                    f"trainer {trainer}: loss term {term!r} at {value:.4g}, "
                    f"{value / floor:.0f}x its best {floor:.4g}",
                )

    def on_tournament(self, event: TelemetryEvent) -> None:
        if event.payload.get("adopted"):
            winner = str(event.payload.get("partner"))
            groups: list[str | None] = [None]
            neighborhood = event.payload.get("neighborhood")
            if neighborhood is not None:
                groups.append(str(neighborhood))
            for group in groups:
                wins = self._round_wins.setdefault(group, {})
                wins[winner] = wins.get(winner, 0) + 1

    def on_fetch_stall(self, event: TelemetryEvent) -> None:
        self._round_stall_s += float(event.payload.get("stall_s", 0.0))

    def on_eval(self, event: TelemetryEvent) -> None:
        """Fold a quality-probe pass (driver eval payloads, which carry
        ``metrics`` instead of ``divergence``, are ignored)."""
        divergence = event.payload.get("divergence")
        if not divergence:
            return
        metric = str(event.payload.get("metric", "js"))
        for trainer, values in divergence.items():
            value = values.get(metric)
            if value is None or not math.isfinite(float(value)):
                continue
            value = float(value)
            name = str(trainer)
            self._div_points[name] = self._div_points.get(name, 0) + 1
            floor = self._div_floor.get(name)
            if floor is None or value < floor:
                self._div_floor[name] = value
                if name in self._last_loss:
                    self._loss_at_floor[name] = self._last_loss[name]
                continue
            if (
                self._div_points[name] <= self.quality_min_points
                or floor <= 0
                or value <= self.quality_factor * floor
            ):
                continue
            # Critical when the loss got better (or held) while the
            # distribution walked away — losses cannot see this failure.
            loss_now = self._last_loss.get(name)
            loss_then = self._loss_at_floor.get(name)
            loss_improving = (
                loss_now is not None
                and loss_then is not None
                and loss_now <= loss_then
            )
            self._warn(
                "quality_collapse",
                name,
                f"trainer {name}: {metric} divergence at {value:.4g}, "
                f"{value / floor:.1f}x its best {floor:.4g}"
                + (
                    " while its training loss still improves"
                    if loss_improving
                    else ""
                ),
                severity="critical" if loss_improving else "warning",
            )

    def on_round_end(self, event: TelemetryEvent) -> None:
        round_index = int(event.payload.get("round", self._round))
        self._round = round_index
        self._win_rounds.append(self._round_wins)
        self._round_wins = {}
        self._check_collapse(round_index)
        train_s = float(event.payload.get("train_s", 0.0))
        if round_index >= self.warmup_rounds and train_s > 0:
            fraction = self._round_stall_s / train_s
            if fraction > self.stall_fraction_threshold:
                self._warn(
                    "stall_regression",
                    None,
                    f"round {round_index}: fetch stall "
                    f"{self._round_stall_s:.3f}s is {fraction:.0%} of the "
                    f"{train_s:.3f}s train phase",
                )
        self._round_stall_s = 0.0

    def _check_collapse(self, round_index: int) -> None:
        totals: dict[str | None, dict[str, int]] = {}
        for round_groups in self._win_rounds:
            for group, wins in round_groups.items():
                group_totals = totals.setdefault(group, {})
                for name, n in wins.items():
                    group_totals[name] = group_totals.get(name, 0) + n
        for group, group_totals in totals.items():
            adoptions = sum(group_totals.values())
            floor = (
                self.collapse_min_adoptions
                if group is None
                else self.neighborhood_min_adoptions
            )
            if adoptions < floor:
                continue
            top, top_wins = max(group_totals.items(), key=lambda kv: kv[1])
            share = top_wins / adoptions
            if share < self.collapse_share:
                continue
            if group is None:
                message = (
                    f"trainer {top} won {top_wins}/{adoptions} adoptions "
                    f"({share:.0%}) over the last {len(self._win_rounds)} "
                    f"round(s); the population is collapsing onto one model"
                )
            else:
                message = (
                    f"trainer {top} won {top_wins}/{adoptions} adoptions "
                    f"({share:.0%}) in neighborhood {group} over the last "
                    f"{len(self._win_rounds)} round(s); the neighborhood "
                    f"is collapsing onto one model"
                )
            self._warn("winrate_collapse", top, message, group=group)

    # -- warning plumbing ----------------------------------------------------

    def _warn(
        self,
        kind: str,
        trainer: str | None,
        message: str,
        severity: str = "warning",
        group: str | None = None,
    ) -> None:
        trainer_key = str(trainer) if trainer is not None else None
        dedupe = (kind, trainer_key, group)
        if dedupe in self._flagged:
            return
        self._flagged.add(dedupe)
        warning = HealthWarning(
            kind=kind,
            round_index=self._round,
            trainer=trainer_key,
            message=message,
            severity=severity,
        )
        self.warnings.append(warning)
        if self._hub is not None:
            self._hub.emit(
                HEALTH,
                kind=kind,
                severity=severity,
                round=warning.round_index,
                trainer=warning.trainer,
                message=message,
            )
