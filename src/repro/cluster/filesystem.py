"""Simulated parallel file system: functional store + cost model.

Two separable concerns:

- :class:`SimulatedFilesystem` *functionally* holds named files (arbitrary
  payload objects plus a logical byte size) and records every open and
  read.  The data-store tests use the statistics to assert the paper's key
  ingestion invariant — *"after the first epoch, no data is read from the
  file system"* — and the naive reader's pathology — *"each file may be
  accessed by multiple processes at the same time"*.

- :class:`PfsCostModel` prices opens and reads from a
  :class:`~repro.cluster.machine.FilesystemSpec`: per-open metadata latency
  with a super-linear contention penalty under open storms, sequential
  streams capped per-stream and in aggregate, and a much lower effective
  bandwidth for random sample-sized reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.cluster.machine import FilesystemSpec

__all__ = ["FsStats", "FileHandle", "SimulatedFilesystem", "PfsCostModel"]


@dataclass
class FsStats:
    """Counters maintained by :class:`SimulatedFilesystem`."""

    opens: int = 0
    reads: int = 0
    bytes_read: int = 0
    opens_per_file: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "FsStats":
        return FsStats(
            self.opens, self.reads, self.bytes_read, dict(self.opens_per_file)
        )

    def reset(self) -> None:
        self.opens = 0
        self.reads = 0
        self.bytes_read = 0
        self.opens_per_file.clear()


class FileHandle:
    """An open file: reading returns the stored payload."""

    def __init__(self, fs: "SimulatedFilesystem", path: str) -> None:
        self._fs = fs
        self.path = path
        self._closed = False

    def read(self) -> Any:
        if self._closed:
            raise ValueError(f"read on closed file {self.path!r}")
        return self._fs._do_read(self.path)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SimulatedFilesystem:
    """In-memory file namespace with open/read accounting."""

    def __init__(self) -> None:
        self._files: dict[str, tuple[Any, int]] = {}
        self.stats = FsStats()

    # -- namespace ---------------------------------------------------------

    def write(self, path: str, payload: Any, nbytes: int) -> None:
        """Create or replace a file with a payload and a logical size."""
        if not path:
            raise ValueError("path must be non-empty")
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self._files[path] = (payload, int(nbytes))

    def exists(self, path: str) -> bool:
        return path in self._files

    def nbytes(self, path: str) -> int:
        return self._files[path][1]

    def paths(self) -> Iterator[str]:
        return iter(sorted(self._files))

    @property
    def total_bytes(self) -> int:
        return sum(n for _, n in self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    # -- access --------------------------------------------------------------

    def open(self, path: str) -> FileHandle:
        if path not in self._files:
            raise FileNotFoundError(path)
        self.stats.opens += 1
        self.stats.opens_per_file[path] = self.stats.opens_per_file.get(path, 0) + 1
        return FileHandle(self, path)

    def read_file(self, path: str) -> Any:
        """Convenience open+read+close."""
        with self.open(path) as fh:
            return fh.read()

    def _do_read(self, path: str) -> Any:
        payload, nbytes = self._files[path]
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        return payload


class PfsCostModel:
    """Analytic timing for PFS operations under concurrency."""

    def __init__(self, spec: FilesystemSpec) -> None:
        self.spec = spec

    def open_time(self, concurrent_openers: int, access: str = "random") -> float:
        """Cost of one open under contention.

        ``access="random"`` models many clients randomly hitting a shared
        pool of files (lock/MDS-cache collisions: low knee); ``"bulk"``
        models disjoint sequential assignments (only machine-wide open
        storms hurt: high knee).
        """
        if concurrent_openers < 1:
            raise ValueError("concurrent_openers must be >= 1")
        s = self.spec
        if access == "random":
            knee = s.random_open_knee
        elif access == "bulk":
            knee = s.bulk_open_knee
        else:
            raise ValueError(f"access must be 'random' or 'bulk', got {access!r}")
        penalty = 1.0 + (concurrent_openers / knee) ** s.open_contention_power
        return s.open_latency * penalty

    def effective_aggregate_bandwidth(self, concurrent_streams: int) -> float:
        """Delivered aggregate bandwidth degrades under very many clients
        (inter-trainer interference at the PFS, Fig. 11)."""
        if concurrent_streams < 1:
            raise ValueError("concurrent_streams must be >= 1")
        s = self.spec
        degradation = 1.0 + (
            concurrent_streams / s.aggregate_degradation_knee
        ) ** s.aggregate_degradation_power
        return s.aggregate_bandwidth / degradation

    def stream_bandwidth(self, concurrent_streams: int) -> float:
        """Per-stream sequential bandwidth: stream cap or fair share of the
        (degraded) aggregate, whichever binds."""
        if concurrent_streams < 1:
            raise ValueError("concurrent_streams must be >= 1")
        s = self.spec
        return min(
            s.per_stream_bandwidth,
            self.effective_aggregate_bandwidth(concurrent_streams)
            / concurrent_streams,
        )

    def sequential_read_time(self, nbytes: float, concurrent_streams: int) -> float:
        """Time for one client to stream ``nbytes`` sequentially."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return nbytes / self.stream_bandwidth(concurrent_streams)

    def random_sample_read_time(
        self, sample_nbytes: float, concurrent_clients: int
    ) -> float:
        """Time to fetch one randomly placed sample from inside a bundle
        file: the open is amortized by the caller; the read itself runs at
        the (seek-bound) random-read bandwidth, degraded further when the
        clients' fair share of the aggregate is smaller."""
        if sample_nbytes < 0:
            raise ValueError("sample_nbytes must be >= 0")
        s = self.spec
        bw = min(
            s.random_read_bandwidth,
            self.effective_aggregate_bandwidth(max(1, concurrent_clients))
            / max(1, concurrent_clients),
        )
        return sample_nbytes / bw

    def bulk_preload_time(
        self,
        bytes_per_reader: float,
        files_per_reader: float,
        total_concurrent_readers: int,
    ) -> float:
        """Time for one reader of a cohort to preload its disjoint file
        assignment: sequential streaming plus one contended open per file.

        ``total_concurrent_readers`` counts *every* rank preloading across
        the whole machine — inter-trainer interference at the PFS is what
        degrades the 64-trainer preload point in Fig. 11.
        """
        if bytes_per_reader < 0 or files_per_reader < 0:
            raise ValueError("preload sizes must be >= 0")
        t_stream = self.sequential_read_time(bytes_per_reader, total_concurrent_readers)
        t_open = files_per_reader * self.open_time(
            total_concurrent_readers, access="bulk"
        )
        return t_stream + t_open
