"""GPU compute-time model.

Prices one forward/backward pass from the per-sample FLOP count of the
model architecture.  Two effects beyond raw throughput matter for the
paper's figures:

- **small-batch roll-off** — with a fixed global mini-batch, strong
  scaling shrinks the per-GPU batch; skinny GEMMs underutilize the GPU, so
  per-sample time *rises* as per-GPU batch falls.  Modelled as a
  saturating efficiency factor ``b / (b + b_half)``.
- **fixed step overhead** — per-step framework/launch cost that does not
  shrink with parallelism (see :class:`repro.cluster.machine.PerfCalibration`).
"""

from __future__ import annotations

from repro.cluster.machine import MachineSpec

__all__ = ["ComputeModel"]


class ComputeModel:
    """Analytic per-step compute time for one rank (one GPU)."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine

    def sustained_flops(self, per_gpu_batch: float) -> float:
        """Sustained FLOP/s of one GPU at the given per-GPU batch size."""
        if per_gpu_batch <= 0:
            raise ValueError(f"per_gpu_batch must be positive, got {per_gpu_batch}")
        gpu = self.machine.gpu
        rolloff = per_gpu_batch / (per_gpu_batch + gpu.batch_half_saturation)
        return gpu.peak_flops * gpu.gemm_efficiency * rolloff

    def step_compute_time(
        self, train_flops_per_sample: float, per_gpu_batch: float
    ) -> float:
        """Compute time of one optimizer step on one rank (forward +
        backward for ``per_gpu_batch`` samples), excluding communication
        and the fixed step overhead."""
        if train_flops_per_sample < 0:
            raise ValueError("train_flops_per_sample must be >= 0")
        flops = train_flops_per_sample * per_gpu_batch
        return flops / self.sustained_flops(per_gpu_batch)

    def inference_time(
        self, fwd_flops_per_sample: float, per_gpu_batch: float
    ) -> float:
        """Forward-only time for a batch on one rank (tournament evaluation)."""
        if fwd_flops_per_sample < 0:
            raise ValueError("fwd_flops_per_sample must be >= 0")
        flops = fwd_flops_per_sample * per_gpu_batch
        return flops / self.sustained_flops(per_gpu_batch)
