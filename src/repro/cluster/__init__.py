"""Simulated HPC machine: hardware specs, compute/IO performance models.

The paper's experiments ran on Lassen, a CORAL-class system (795 nodes,
2 POWER9 + 4 Volta V100 per node, NVLink2 intra-node, dual-rail IB EDR
inter-node, 256 GB host memory per node, GPFS parallel file system).  This
package models that machine analytically:

- :mod:`repro.cluster.machine` — hardware specifications and the Lassen
  defaults, plus the calibration constants of the performance model;
- :mod:`repro.cluster.compute` — GPU step-time model (FLOP throughput with
  a small-batch efficiency roll-off and fixed per-step framework overhead);
- :mod:`repro.cluster.filesystem` — a functional simulated parallel file
  system (tracks opens/reads so tests can assert ingestion behaviour) and
  a PFS *cost* model (open latency with contention, per-stream and
  aggregate bandwidth caps).

All constants are dataclass fields documented at their definition; the
benchmarks print the constants they used next to the series they produce.
"""

from repro.cluster.machine import (
    FilesystemSpec,
    GpuSpec,
    MachineSpec,
    NodeSpec,
    PerfCalibration,
    lassen,
)
from repro.cluster.compute import ComputeModel
from repro.cluster.filesystem import (
    FsStats,
    PfsCostModel,
    SimulatedFilesystem,
)

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "FilesystemSpec",
    "MachineSpec",
    "PerfCalibration",
    "lassen",
    "ComputeModel",
    "SimulatedFilesystem",
    "FsStats",
    "PfsCostModel",
]
