"""Hardware specifications and the Lassen-like default machine.

Every number that the performance model depends on lives here as a
documented dataclass field, so experiments can print exactly which
constants produced their series and tests can perturb them.

Sources for the defaults:

- Lassen publicly documented specs (IBM AC922 nodes: 2 POWER9, 4 V100,
  NVLink2, dual-rail EDR InfiniBand, 256 GB DDR4).
- V100 peak single-precision throughput: 15.7 TFLOP/s (CUDA cores); dense
  fully-connected training sustains a fraction of peak, captured by
  ``gemm_efficiency`` and the small-batch roll-off in
  :mod:`repro.cluster.compute`.
- PFS constants are calibrated so the ingestion behaviour matches the
  paper's Figures 9-11 in *shape* (see DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.comm.costmodel import LinkParams
from repro.utils.units import GB, GIB, MB

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "FilesystemSpec",
    "PerfCalibration",
    "MachineSpec",
    "lassen",
]


@dataclass(frozen=True)
class GpuSpec:
    """One accelerator.

    ``peak_flops`` is peak single-precision throughput; ``gemm_efficiency``
    is the sustained fraction of peak for large dense training workloads;
    ``batch_half_saturation`` is the per-GPU mini-batch size at which
    sustained throughput reaches half of its large-batch value (skinny
    GEMMs underutilize the SMs — this drives the strong-scaling roll-off in
    Fig. 9 as the fixed global mini-batch is split across more GPUs).
    The surrogate's layers are extremely narrow at the latent end (width
    20), so the half-saturation batch is large: even a 128-sample batch
    runs these GEMMs well below the sustained large-GEMM rate.
    """

    name: str = "V100-16GB"
    peak_flops: float = 15.7e12
    gemm_efficiency: float = 0.60
    batch_half_saturation: float = 200.0
    memory_bytes: int = 16 * GIB

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or not 0 < self.gemm_efficiency <= 1:
            raise ValueError("invalid GPU throughput parameters")
        if self.batch_half_saturation < 0:
            raise ValueError("batch_half_saturation must be >= 0")


@dataclass(frozen=True)
class NodeSpec:
    """One compute node and its two link classes.

    ``intra_node`` models NVLink2 between ranks sharing a node;
    ``inter_node`` models the node's NIC (dual-rail EDR: 2 x 12.5 GB/s),
    which is *shared* by all ranks on the node (the cost model accounts
    for that sharing).
    """

    gpus_per_node: int = 4
    memory_bytes: int = 256 * GIB
    # Fraction of node memory the data store may occupy (OS, framework,
    # activation workspace, and file-cache headroom take the rest).
    usable_memory_fraction: float = 0.85
    intra_node: LinkParams = field(
        default_factory=lambda: LinkParams(latency=3.0e-6, bandwidth=75 * GB)
    )
    inter_node: LinkParams = field(
        default_factory=lambda: LinkParams(latency=1.5e-6, bandwidth=25 * GB)
    )

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0 or self.memory_bytes <= 0:
            raise ValueError("invalid node parameters")
        if not 0 < self.usable_memory_fraction <= 1:
            raise ValueError("usable_memory_fraction must be in (0, 1]")

    def datastore_bytes_per_rank(self, ranks_per_node: int | None = None) -> int:
        """Host memory available to one data-store rank.

        Resource sets on CORAL systems bind each rank to one GPU and a
        corresponding share of host memory; by default that share is
        ``1/gpus_per_node`` of the usable memory *even if fewer ranks run
        on the node*.  Pass ``ranks_per_node`` to model custom resource
        sets (the paper's Fig.-11 single-trainer baseline ran 1 rank/node
        with the full node memory).
        """
        share = ranks_per_node if ranks_per_node is not None else self.gpus_per_node
        if share <= 0:
            raise ValueError("ranks_per_node must be positive")
        return int(self.memory_bytes * self.usable_memory_fraction / share)


@dataclass(frozen=True)
class FilesystemSpec:
    """Parallel file system (GPFS/Lustre-like) cost parameters.

    - ``aggregate_bandwidth``: total deliverable bandwidth across all
      clients, before client-count degradation (below).
    - ``per_stream_bandwidth``: what one sequential reader stream can pull.
    - ``random_read_bandwidth``: effective per-client bandwidth of small
      random (sample-sized) reads inside large files — seek-bound, far
      below streaming.
    - ``open_latency``: base metadata cost to open a file.
    - Open-cost contention multiplies the latency by
      ``1 + (concurrent_openers / knee) ** power`` with *two* knees:
      ``random_open_knee`` for clients hammering a shared pool of files
      (mini-batch random access collides on file locks and MDS cache —
      this is the Fig. 9/10 naive-reader pathology) and the much larger
      ``bulk_open_knee`` for disjoint sequential assignments (preload
      ensures "each file is only opened by one process per trainer" — it
      only degrades under machine-wide open storms, the Fig.-11 64-trainer
      preload point).
    - ``aggregate_degradation_knee`` / ``_power``: delivered aggregate
      bandwidth itself degrades as ``1 + (clients / knee) ** power`` once
      very many clients stream at once (inter-trainer interference at the
      GPFS, Fig. 11).
    """

    aggregate_bandwidth: float = 120 * GB
    per_stream_bandwidth: float = 1.6 * GB
    random_read_bandwidth: float = 40 * MB
    open_latency: float = 4.0e-3
    random_open_knee: float = 19.0
    bulk_open_knee: float = 512.0
    open_contention_power: float = 2.0
    aggregate_degradation_knee: float = 800.0
    aggregate_degradation_power: float = 2.0

    def __post_init__(self) -> None:
        if min(self.aggregate_bandwidth, self.per_stream_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.random_read_bandwidth <= 0 or self.open_latency < 0:
            raise ValueError("invalid PFS read parameters")
        if min(self.random_open_knee, self.bulk_open_knee) <= 0:
            raise ValueError("open contention knees must be positive")
        if self.open_contention_power < 0:
            raise ValueError("open_contention_power must be >= 0")
        if self.aggregate_degradation_knee <= 0 or self.aggregate_degradation_power < 0:
            raise ValueError("invalid aggregate degradation parameters")


@dataclass(frozen=True)
class PerfCalibration:
    """Cross-cutting calibration constants of the step-time model.

    - ``step_overhead``: fixed per-optimizer-step framework/kernel-launch
      cost per rank (does not shrink with more GPUs; contributes to the
      Fig. 9 efficiency roll-off).  The GAN step runs two phases with
      dozens of kernels each plus optimizer updates, hence tens of ms.
    - ``shuffle_overlap``: fraction of compute time available to hide the
      data-store mini-batch shuffle (the store shuffles on background
      threads; overlap is good but not perfect).
    - ``io_overlap``: fraction of compute time available to hide *naive*
      file ingestion (LBANN data readers prefetch on background I/O
      threads).  At 1 GPU ingestion dwarfs compute and is almost fully
      exposed; at 16 GPUs a large share hides — this asymmetry is what
      lets the naive config strong-scale super-proportionally to its I/O
      share (Fig. 9) while still losing badly to the data store at low
      GPU counts (Fig. 10).
    - ``dynamic_store_residual``: fixed per-step overhead of the
      *dynamically populated* store (store-index bookkeeping and
      fragmented host allocations, vs the preloaded store's contiguous
      per-file layout) — the ~1.10x preloaded-vs-dynamic steady-state gap
      at 16 GPUs in Fig. 10.
    - ``cache_pressure_knee`` / ``cache_pressure_coeff``: host-side
      slowdown of the per-step path when the data store occupies a large
      fraction of node memory:
      ``penalty = 1 + coeff * max(0, occupancy - knee)**2``.  This
      implements the paper's own explanation of the Fig. 11 super-linear
      speedup ("cache effects as the aggregate working set size is
      increased"): the 16-node single-trainer baseline runs at ~58%
      occupancy while 4-node LTFB trainers run nearly empty.
    """

    step_overhead: float = 29.0e-3
    shuffle_overlap: float = 0.95
    io_overlap: float = 0.70
    dynamic_store_residual: float = 9.6e-3
    cache_pressure_knee: float = 0.25
    cache_pressure_coeff: float = 0.80

    def __post_init__(self) -> None:
        if self.step_overhead < 0 or not 0 <= self.shuffle_overlap <= 1:
            raise ValueError("invalid calibration")
        if not 0 <= self.io_overlap <= 1:
            raise ValueError("io_overlap must be in [0, 1]")
        if self.dynamic_store_residual < 0:
            raise ValueError("dynamic_store_residual must be >= 0")
        if self.cache_pressure_coeff < 0 or not 0 <= self.cache_pressure_knee < 1:
            raise ValueError("invalid cache-pressure parameters")

    def cache_pressure_penalty(self, occupancy: float) -> float:
        """Multiplier on the host-side step path at a given data-store
        occupancy fraction of usable node memory (see class docstring)."""
        if occupancy < 0:
            raise ValueError(f"occupancy must be >= 0, got {occupancy}")
        excess = max(0.0, occupancy - self.cache_pressure_knee)
        return 1.0 + self.cache_pressure_coeff * excess * excess


@dataclass(frozen=True)
class MachineSpec:
    """A whole machine: nodes, GPUs, file system, calibration."""

    name: str = "lassen-sim"
    num_nodes: int = 795
    node: NodeSpec = field(default_factory=NodeSpec)
    gpu: GpuSpec = field(default_factory=GpuSpec)
    filesystem: FilesystemSpec = field(default_factory=FilesystemSpec)
    calibration: PerfCalibration = field(default_factory=PerfCalibration)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node.gpus_per_node

    def with_(self, **kwargs) -> "MachineSpec":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **kwargs)


def lassen() -> MachineSpec:
    """The default Lassen-like machine used by all paper benchmarks."""
    return MachineSpec()
