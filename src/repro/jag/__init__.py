"""Synthetic JAG: a semi-analytic ICF implosion data generator.

The paper trains on outputs of the JAG model — a semi-analytic simulator
of the final stages of an inertial-confinement-fusion implosion that maps
a 5-D input (laser drive strength + 3-D shell shape) to a multimodal
output bundle: X-ray camera images on three lines of sight with 4-channel
hyperspectral resolution, plus 15 scalar observables.  JAG itself and the
2 TB campaign dataset are not available, so this package implements the
closest synthetic equivalent (see DESIGN.md, "Substitutions"):

- :mod:`repro.jag.params` — the 5-D input space;
- :mod:`repro.jag.simulator` — a vectorized semi-analytic implosion model
  (compression/temperature/yield physics sketch) that renders the
  multi-view, multi-channel hot-spot images;
- :mod:`repro.jag.postprocess` — the 15 scalar observables;
- :mod:`repro.jag.sampling` — space-filling experiment designs (uniform,
  Latin hypercube / Sobol via SciPy, and a deterministic rank-1 lattice
  standing in for the paper's spectral design);
- :mod:`repro.jag.dataset` — end-to-end dataset generation, normalization,
  and packing into bundle files.

What the substitution preserves: outputs are a smooth but strongly
nonlinear function of a low-dimensional input; scalars respond mostly to
the drive, images mostly to the shape modes; all modalities are jointly
determined by the same latent implosion state (so a joint surrogate is the
right model class); samples are produced in exploration order (so
contiguous file partitions are non-IID).
"""

from repro.jag.params import PARAMETER_NAMES, NUM_PARAMS, ParameterSpace
from repro.jag.simulator import ImplosionState, JagSimulator
from repro.jag.postprocess import NUM_SCALARS, SCALAR_NAMES, derive_scalars
from repro.jag.sampling import design_points
from repro.jag.dataset import (
    JagDataset,
    JagDatasetConfig,
    JagSchema,
    generate_dataset,
    paper_schema,
    small_schema,
)

__all__ = [
    "ParameterSpace",
    "PARAMETER_NAMES",
    "NUM_PARAMS",
    "JagSimulator",
    "ImplosionState",
    "derive_scalars",
    "SCALAR_NAMES",
    "NUM_SCALARS",
    "design_points",
    "JagSchema",
    "JagDatasetConfig",
    "JagDataset",
    "generate_dataset",
    "paper_schema",
    "small_schema",
]
