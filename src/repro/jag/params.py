"""The 5-D JAG input parameter space.

The paper's campaign varied "the strength of the laser drive and the 3D
shape of the imploding shell".  Our synthetic space keeps that structure:
one drive parameter, three shape-mode parameters (Legendre P2/P4
amplitudes and an azimuthal phase), and a shell-thickness parameter.
All parameters live in normalized coordinates ``[0, 1]``; the simulator
maps them to physical-ish ranges internally.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PARAMETER_NAMES", "NUM_PARAMS", "ParameterSpace"]

PARAMETER_NAMES: tuple[str, ...] = (
    "laser_drive",  # scales implosion velocity / delivered energy
    "shell_p2",  # P2 (prolate/oblate) shape-mode amplitude, signed
    "shell_p4",  # P4 shape-mode amplitude, signed
    "mode_phase",  # azimuthal orientation of the asymmetry
    "shell_thickness",  # initial shell thickness (fuel mass / confinement)
)

NUM_PARAMS = len(PARAMETER_NAMES)


class ParameterSpace:
    """Validation and named access for normalized 5-vectors."""

    names = PARAMETER_NAMES
    dim = NUM_PARAMS

    @staticmethod
    def validate(x: np.ndarray) -> np.ndarray:
        """Check an ``(n, 5)`` batch of normalized inputs; returns float32."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != NUM_PARAMS:
            raise ValueError(
                f"expected inputs of shape (n, {NUM_PARAMS}), got {x.shape}"
            )
        if np.any(x < -1e-6) or np.any(x > 1 + 1e-6):
            raise ValueError("inputs must lie in the unit hypercube [0, 1]^5")
        return np.clip(x, 0.0, 1.0)

    @staticmethod
    def column(x: np.ndarray, name: str) -> np.ndarray:
        """Select a named parameter column from an ``(n, 5)`` batch."""
        try:
            idx = PARAMETER_NAMES.index(name)
        except ValueError:
            raise KeyError(
                f"unknown parameter {name!r}; names: {PARAMETER_NAMES}"
            ) from None
        return x[:, idx]
