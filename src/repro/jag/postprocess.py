"""Derivation of the 15 scalar observables from an implosion state.

The paper post-processed the JAG output into "15 scalar-valued observable
signatures" per sample.  Ours are the natural diagnostics of the synthetic
implosion model: burn scalars (yield, temperature, areal density, timing),
hydrodynamic scalars (pressure, velocity, convergence), per-view X-ray
brightness, and apparent shape-mode amplitudes.

Scalars are returned in physical-ish units; normalization for training is
the dataset module's concern.
"""

from __future__ import annotations

import numpy as np

from repro.jag.simulator import ImplosionState

__all__ = ["SCALAR_NAMES", "NUM_SCALARS", "derive_scalars"]

SCALAR_NAMES: tuple[str, ...] = (
    "log_yield",
    "burn_temperature",
    "areal_density",
    "bang_time",
    "burn_width",
    "hot_spot_radius",
    "stagnation_pressure",
    "implosion_velocity",
    "convergence_ratio",
    "xray_brightness_v0",
    "xray_brightness_v1",
    "xray_brightness_v2",
    "apparent_p2",
    "apparent_p4",
    "downscatter_ratio",
)

NUM_SCALARS = len(SCALAR_NAMES)


def derive_scalars(state: ImplosionState, images: np.ndarray) -> np.ndarray:
    """Compute the ``(n, 15)`` scalar block from state and rendered images.

    ``images`` must be the ``(n, views, channels, S, S)`` tensor from
    :meth:`repro.jag.simulator.JagSimulator.render_images`; brightness
    scalars are measured from it (channel-averaged mean intensity per
    view), so scalars and images are consistent by construction — the
    internal-consistency property the surrogate is asked to learn.
    Datasets with fewer than 3 views repeat the last view's brightness.
    """
    n = state.n
    if images.ndim != 5 or images.shape[0] != n:
        raise ValueError(
            f"images must be (n, views, channels, S, S) with n={n}, "
            f"got {images.shape}"
        )
    brightness = images.mean(axis=(2, 3, 4))  # (n, views)
    views = brightness.shape[1]
    bright3 = np.stack(
        [brightness[:, min(v, views - 1)] for v in range(3)], axis=1
    )

    # Apparent (projected) shape modes as a diagnostic would report them:
    # attenuated by compression (more converged implosions smooth modes).
    smoothing = 1.0 / (1.0 + 0.05 * state.convergence)
    apparent_p2 = state.p2 * smoothing * np.cos(state.phase)
    apparent_p4 = state.p4 * smoothing

    areal_density = state.density * state.hot_spot_radius
    downscatter = 0.02 + 0.08 * state.thickness * np.sqrt(
        np.maximum(state.convergence, 1.0) / 18.0
    )

    cols = [
        np.log10(np.maximum(state.fusion_yield, 1e-12)),
        state.temperature,
        areal_density,
        state.bang_time,
        state.burn_width,
        state.hot_spot_radius,
        state.stagnation_pressure
        if hasattr(state, "stagnation_pressure")
        else state.pressure,
        state.velocity,
        state.convergence,
        bright3[:, 0],
        bright3[:, 1],
        bright3[:, 2],
        apparent_p2,
        apparent_p4,
        downscatter,
    ]
    out = np.stack([np.asarray(c, dtype=np.float32) for c in cols], axis=1)
    assert out.shape == (n, NUM_SCALARS)
    return out
