"""Space-filling experiment designs over the unit hypercube.

The paper used "a spectral sampling approach to optimally assign
simulation parameters" (Kailkhura et al., JMLR 2018) to densely cover the
5-D space.  We provide:

- ``"uniform"`` — i.i.d. uniform points (the weakest baseline);
- ``"lhs"`` — Latin hypercube (SciPy QMC engine);
- ``"sobol"`` — scrambled Sobol sequence (SciPy QMC engine);
- ``"lattice"`` — a deterministic rank-1 (Korobov-style) lattice built
  from powers of the plastic constant, our stand-in for the spectral
  design: like that method it produces points with near-optimal
  low-frequency spectral coverage, and like the paper's campaign the
  points come in a *deterministic exploration order* (which is what makes
  contiguous file partitions non-IID).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import qmc

__all__ = ["design_points", "rank1_lattice"]


def rank1_lattice(n: int, dim: int, seed: int = 0) -> np.ndarray:
    """Deterministic rank-1 lattice: ``x_i = frac(i * g + shift)``.

    The generator vector ``g`` uses powers of the plastic-constant
    generalization of the golden ratio (the "R_d" sequence), which has
    excellent equidistribution in moderate dimension; ``seed`` picks the
    Cranley-Patterson rotation (shift).
    """
    if n <= 0 or dim <= 0:
        raise ValueError("n and dim must be positive")
    # Unique positive root of x**(dim+1) = x + 1.
    phi = 2.0
    for _ in range(64):
        phi = (1.0 + phi) ** (1.0 / (dim + 1))
    g = (1.0 / phi) ** np.arange(1, dim + 1)
    shift = np.random.default_rng(seed).random(dim)
    i = np.arange(1, n + 1, dtype=np.float64)[:, None]
    return np.mod(shift + i * g[None, :], 1.0)


def design_points(
    n: int,
    dim: int,
    method: str = "lattice",
    seed: int = 0,
) -> np.ndarray:
    """Generate an ``(n, dim)`` design in [0, 1]^dim with the given method."""
    if n <= 0 or dim <= 0:
        raise ValueError("n and dim must be positive")
    if method == "uniform":
        return np.random.default_rng(seed).random((n, dim))
    if method == "lhs":
        engine = qmc.LatinHypercube(d=dim, seed=seed)
        return engine.random(n)
    if method == "sobol":
        engine = qmc.Sobol(d=dim, scramble=True, seed=seed)
        return engine.random(n)
    if method == "lattice":
        return rank1_lattice(n, dim, seed=seed)
    raise ValueError(
        f"unknown design method {method!r}; "
        "choose from uniform, lhs, sobol, lattice"
    )
