"""End-to-end JAG dataset generation, normalization, and packing.

Produces the column-wise multimodal dataset the trainers consume:

- ``params``  — ``(n, 5)`` normalized inputs in [0, 1];
- ``scalars`` — ``(n, 15)`` z-scored observables (statistics kept for
  de-normalization);
- ``images``  — ``(n, views*channels*S*S)`` flattened intensities in
  [0, 1).

**Sample order matters.**  The paper's campaign wrote samples to its HDF5
bundles "in the order in which the 5-D input space was explored", and
explicitly notes that shuffling/repacking the files is infeasible in real
workflows — so contiguous file partitions hand each LTFB trainer a
*biased* slice of parameter space.  ``order="sweep"`` (default) reproduces
that: samples are sorted by laser-drive band (then P2 within a band), the
way a campaign sweeps its primary knob.  ``order="design"`` keeps the raw
low-discrepancy order, whose prefixes are near-IID — useful as a control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cluster.filesystem import SimulatedFilesystem
from repro.datastore.bundle import write_bundles
from repro.datastore.reader import ArrayReader
from repro.jag.params import NUM_PARAMS
from repro.jag.postprocess import NUM_SCALARS, derive_scalars
from repro.jag.sampling import design_points
from repro.jag.simulator import JagSimulator

__all__ = [
    "JagSchema",
    "paper_schema",
    "small_schema",
    "JagDatasetConfig",
    "JagDataset",
    "generate_dataset",
]


@dataclass(frozen=True)
class JagSchema:
    """Shapes of one sample; byte size follows from the schema alone."""

    image_size: int = 16
    views: int = 3
    channels: int = 4
    n_scalars: int = NUM_SCALARS
    n_params: int = NUM_PARAMS

    def __post_init__(self) -> None:
        if min(self.image_size, self.views, self.channels) < 1:
            raise ValueError("invalid schema dimensions")

    @property
    def n_images(self) -> int:
        return self.views * self.channels

    @property
    def image_flat_dim(self) -> int:
        return self.n_images * self.image_size * self.image_size

    @property
    def sample_floats(self) -> int:
        return self.n_params + self.n_scalars + self.image_flat_dim

    @property
    def sample_nbytes(self) -> int:
        """float32 bytes per sample.  At paper dimensions (64x64, 3 views,
        4 channels) this is ~192 KB — 10M samples is ~2 TB, matching the
        paper's "2TB database"."""
        return 4 * self.sample_floats


def paper_schema() -> JagSchema:
    """Paper-scale sample shape (64x64 images) for performance models."""
    return JagSchema(image_size=64)


def small_schema(image_size: int = 16) -> JagSchema:
    """Scaled-down shape for real (laptop) training runs."""
    return JagSchema(image_size=image_size)


@dataclass(frozen=True)
class JagDatasetConfig:
    n_samples: int = 4096
    schema: JagSchema = field(default_factory=small_schema)
    seed: int = 0
    design: str = "lattice"
    order: str = "sweep"  # "sweep" (paper-like, non-IID prefixes) | "design"
    drive_bands: int = 12  # sweep granularity of the primary knob
    chunk: int = 2048  # image-rendering chunk size (memory control)

    def __post_init__(self) -> None:
        if self.n_samples <= 0 or self.chunk <= 0 or self.drive_bands <= 0:
            raise ValueError("invalid dataset configuration")
        if self.order not in ("sweep", "design"):
            raise ValueError(f"order must be 'sweep' or 'design', got {self.order!r}")


@dataclass
class JagDataset:
    """Generated dataset: columns, normalization statistics, provenance."""

    config: JagDatasetConfig
    params: np.ndarray  # (n, 5) float32
    scalars: np.ndarray  # (n, 15) float32, z-scored
    images: np.ndarray  # (n, image_flat_dim) float32 in [0, 1)
    scalar_mean: np.ndarray  # (15,)
    scalar_std: np.ndarray  # (15,)

    @property
    def n_samples(self) -> int:
        return int(self.params.shape[0])

    @property
    def schema(self) -> JagSchema:
        return self.config.schema

    @property
    def fields(self) -> dict[str, np.ndarray]:
        return {"params": self.params, "scalars": self.scalars, "images": self.images}

    def denormalize_scalars(self, z: np.ndarray) -> np.ndarray:
        return z * self.scalar_std + self.scalar_mean

    def image_tensor(self, ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Unflatten selected samples to ``(k, views, channels, S, S)``."""
        s = self.schema
        sel = self.images[np.asarray(ids)]
        return sel.reshape(-1, s.views, s.channels, s.image_size, s.image_size)

    def train_val_split(
        self, val_fraction: float = 0.1, mode: str = "tail"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split sample ids into train/validation.

        ``mode="tail"`` reserves the last samples (cheap, but under
        ``order="sweep"`` the tail is a biased region); ``mode="strided"``
        takes every k-th sample, giving an unbiased validation set over
        the whole space — the default choice of the experiments, standing
        in for the paper's separately generated 1M-sample test set.
        """
        if not 0.0 < val_fraction < 1.0:
            raise ValueError("val_fraction must be in (0, 1)")
        n = self.n_samples
        n_val = max(1, int(round(n * val_fraction)))
        ids = np.arange(n)
        if mode == "tail":
            return ids[: n - n_val], ids[n - n_val :]
        if mode == "strided":
            stride = max(2, n // n_val)
            val = ids[::stride][:n_val]
            mask = np.ones(n, dtype=bool)
            mask[val] = False
            return ids[mask], val
        raise ValueError(f"mode must be 'tail' or 'strided', got {mode!r}")

    def reader(
        self, sample_ids: Sequence[int] | np.ndarray, rng: np.random.Generator
    ) -> ArrayReader:
        """In-memory reader over a subset of this dataset."""
        return ArrayReader(self.fields, np.asarray(sample_ids), rng)

    def write_bundles(
        self,
        fs: SimulatedFilesystem,
        samples_per_bundle: int,
        prefix: str = "jag",
    ) -> list[str]:
        """Pack the dataset (in its generation order) into bundle files."""
        return write_bundles(fs, self.fields, samples_per_bundle, prefix)


def _sweep_order(params: np.ndarray, drive_bands: int) -> np.ndarray:
    """Campaign-like exploration order: by drive band, then P2 amplitude."""
    drive_bin = np.minimum(
        (params[:, 0] * drive_bands).astype(np.int64), drive_bands - 1
    )
    return np.lexsort((params[:, 1], drive_bin))


def generate_dataset(config: JagDatasetConfig) -> JagDataset:
    """Run the synthetic campaign: design -> simulate -> postprocess -> pack."""
    s = config.schema
    sim = JagSimulator(
        image_size=s.image_size, views=s.views, channels=s.channels
    )
    x = design_points(
        config.n_samples, s.n_params, method=config.design, seed=config.seed
    ).astype(np.float32)
    if config.order == "sweep":
        x = x[_sweep_order(x, config.drive_bands)]

    n = config.n_samples
    scalars = np.empty((n, s.n_scalars), dtype=np.float32)
    images = np.empty((n, s.image_flat_dim), dtype=np.float32)
    for lo in range(0, n, config.chunk):
        hi = min(n, lo + config.chunk)
        state = sim.run(x[lo:hi])
        img = sim.render_images(state)
        scalars[lo:hi] = derive_scalars(state, img)
        images[lo:hi] = img.reshape(hi - lo, -1)

    mean = scalars.mean(axis=0)
    std = scalars.std(axis=0)
    std = np.where(std < 1e-6, 1.0, std).astype(np.float32)
    scalars = (scalars - mean) / std
    return JagDataset(
        config=config,
        params=x,
        scalars=scalars,
        images=images,
        scalar_mean=mean.astype(np.float32),
        scalar_std=std,
    )
