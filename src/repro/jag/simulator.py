"""Vectorized semi-analytic implosion model and X-ray image renderer.

A stand-in for the JAG simulator: it takes the normalized 5-D inputs of
:mod:`repro.jag.params` and produces a per-sample *implosion state*
(velocity, temperature, compression, yield, ...) plus multi-view,
multi-channel hot-spot images.  The functional forms are physics-flavoured
(power-law compression scalings, an Arrhenius-like fusion reactivity, a
Legendre-mode-perturbed hot-spot boundary) but make no claim of fidelity —
what matters for the reproduction is the *structure* documented in
:mod:`repro.jag`:

- scalar observables respond smoothly but strongly nonlinearly to the
  drive (yield is exponential in temperature);
- asymmetry modes degrade compression (coupling all outputs to all
  inputs) and dominate the image morphology;
- the three views see different projections of the same 3-D shape, and
  the four channels see different temperature sensitivities and apparent
  radii — so images carry correlated but non-redundant information.

Everything is vectorized over samples; the renderer evaluates the hot-spot
boundary on a polar per-pixel basis with broadcasting (no Python loops
over pixels).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.jag.params import ParameterSpace

__all__ = ["ImplosionState", "JagSimulator"]


@dataclass
class ImplosionState:
    """Per-sample physical state; every field is a float32 ``(n,)`` array,
    except the raw shape parameters which are kept for image rendering."""

    velocity: np.ndarray  # implosion velocity, km/s
    temperature: np.ndarray  # burn-averaged ion temperature, keV
    convergence: np.ndarray  # convergence ratio (dimensionless)
    density: np.ndarray  # stagnated fuel density, g/cc
    pressure: np.ndarray  # stagnation pressure, arbitrary units
    hot_spot_radius: np.ndarray  # in units of the image half-width
    fusion_yield: np.ndarray  # neutron yield, arbitrary units
    bang_time: np.ndarray  # time of peak burn, ns
    burn_width: np.ndarray  # burn duration, ps
    p2: np.ndarray  # signed P2 amplitude
    p4: np.ndarray  # signed P4 amplitude
    phase: np.ndarray  # azimuthal phase, radians
    thickness: np.ndarray  # shell thickness multiplier

    @property
    def n(self) -> int:
        return int(self.velocity.shape[0])


def _legendre_p2(c: np.ndarray) -> np.ndarray:
    return 0.5 * (3.0 * c * c - 1.0)


def _legendre_p4(c: np.ndarray) -> np.ndarray:
    c2 = c * c
    return 0.125 * (35.0 * c2 * c2 - 30.0 * c2 + 3.0)


class JagSimulator:
    """Deterministic map from normalized inputs to state and images.

    Parameters
    ----------
    image_size:
        Pixels per image side.
    views, channels:
        Camera lines of sight and hyperspectral energy channels.  The
        paper uses 3 views x 4 channels; other values are supported for
        scaled studies.
    """

    # Reference scales of the physics sketch.
    V0 = 325.0  # km/s reference implosion velocity
    T0 = 4.0  # keV reference temperature
    ARRHENIUS = 19.94  # reactivity exponent scale, ~DT Gamow peak

    def __init__(self, image_size: int = 16, views: int = 3, channels: int = 4) -> None:
        if image_size < 4:
            raise ValueError(f"image_size must be >= 4, got {image_size}")
        if views < 1 or channels < 1:
            raise ValueError("views and channels must be >= 1")
        self.image_size = int(image_size)
        self.views = int(views)
        self.channels = int(channels)
        # Per-view projection of the 3-D shape modes onto the image plane:
        # each line of sight sees a different mix of (p2, p4) and a
        # different azimuthal offset.
        angles = np.linspace(0.0, np.pi / 2.0, self.views, dtype=np.float64)
        self._view_p2_gain = np.cos(angles) * 1.0 + 0.15
        self._view_p4_gain = 0.4 + 0.6 * np.sin(angles)
        self._view_phase = np.linspace(0.0, np.pi / 3.0, self.views)
        # Per-channel emission properties: harder channels (higher index)
        # are more temperature-sensitive, apparently smaller, and sharper.
        c = np.arange(self.channels, dtype=np.float64)
        self._chan_gamma = 1.5 + 0.8 * c
        self._chan_radius = 1.0 + 0.15 * (self.channels - 1 - c) / max(
            1, self.channels - 1
        )
        self._chan_sharpness = 2.0 + c
        # Pixel grid in [-1, 1]^2 (shared by all samples).
        axis = np.linspace(-1.0, 1.0, self.image_size, dtype=np.float64)
        yy, xx = np.meshgrid(axis, axis, indexing="ij")
        self._pix_r = np.sqrt(xx * xx + yy * yy)
        self._pix_phi = np.arctan2(yy, xx)

    # -- physics ------------------------------------------------------------

    def run(self, x: np.ndarray) -> ImplosionState:
        """Evaluate the implosion model on an ``(n, 5)`` batch."""
        x = ParameterSpace.validate(x).astype(np.float64)
        drive = x[:, 0]
        p2 = (x[:, 1] - 0.5) * 0.5
        p4 = (x[:, 2] - 0.5) * 0.3
        phase = x[:, 3] * np.pi
        tau = 0.7 + 0.6 * x[:, 4]

        asym2 = p2 * p2 + p4 * p4
        v = 250.0 + 150.0 * drive
        vr = v / self.V0
        # Asymmetry spoils compression; thick shells implode slower but
        # confine longer.
        conv = 18.0 * vr**0.8 * tau**-0.4 * (1.0 - 1.5 * asym2)
        conv = np.maximum(conv, 1.0)
        temp = self.T0 * vr**2 * (1.0 - 2.2 * asym2) * tau**0.2
        temp = np.maximum(temp, 0.3)
        density = 0.25 * conv**3 * tau
        pressure = density * temp
        # Radius floor keeps the hot spot resolvable at the dataset's
        # image resolutions (the paper images 64x64; we default to 16x16).
        r_hs = np.clip(
            0.18 + 0.34 * (1.0 - drive) * tau**0.3 * (1.0 + asym2), 0.12, 0.85
        )
        # Arrhenius-like reactivity makes yield brutally nonlinear in
        # drive; the burn volume scales with the *converged* fuel radius
        # (~1/convergence), so rho^2 V grows ~conv^3 and yield rises
        # monotonically (and super-linearly) with drive.
        reactivity = np.exp(-self.ARRHENIUS / np.cbrt(temp))
        burn_volume = (2.0 / conv) ** 3
        fusion_yield = density**2 * burn_volume * reactivity * 1.0e8
        bang_time = 8.5 / vr * np.sqrt(tau)
        burn_width = 120.0 * r_hs / np.sqrt(temp)

        f32 = lambda a: np.asarray(a, dtype=np.float32)  # noqa: E731
        return ImplosionState(
            velocity=f32(v),
            temperature=f32(temp),
            convergence=f32(conv),
            density=f32(density),
            pressure=f32(pressure),
            hot_spot_radius=f32(r_hs),
            fusion_yield=f32(fusion_yield),
            bang_time=f32(bang_time),
            burn_width=f32(burn_width),
            p2=f32(p2),
            p4=f32(p4),
            phase=f32(phase),
            thickness=f32(tau),
        )

    # -- imaging ------------------------------------------------------------------

    def render_images(self, state: ImplosionState) -> np.ndarray:
        """Render ``(n, views, channels, S, S)`` float32 images in [0, 1).

        Each pixel sees the hot-spot brightness profile
        ``B_c * exp(-(r / R_vc(phi))^k_c)`` where the boundary
        ``R_vc(phi)`` carries the view-projected P2/P4 perturbation and the
        channel-dependent apparent radius; soft channels additionally show
        a faint shell limb.  Intensities are compressed to [0, 1) with
        ``I / (1 + I)``.
        """
        n = state.n
        S = self.image_size
        r = self._pix_r[None, None, :, :]  # (1, 1, S, S)
        out = np.empty((n, self.views, self.channels, S, S), dtype=np.float32)

        temp = state.temperature.astype(np.float64)[:, None, None, None]
        r_hs = state.hot_spot_radius.astype(np.float64)[:, None, None, None]
        p2 = state.p2.astype(np.float64)[:, None, None, None]
        p4 = state.p4.astype(np.float64)[:, None, None, None]
        phase = state.phase.astype(np.float64)[:, None, None, None]

        for v in range(self.views):
            phi = self._pix_phi[None, None, :, :] - (phase + self._view_phase[v])
            cphi = np.cos(phi)
            shape = (
                1.0
                + self._view_p2_gain[v] * p2 * _legendre_p2(cphi)
                + self._view_p4_gain[v] * p4 * _legendre_p4(cphi)
            )
            boundary = np.clip(r_hs * shape, 0.02, None)  # (n, 1, S, S)
            for c in range(self.channels):
                bright = (temp / self.T0) ** self._chan_gamma[c]
                r_c = boundary * self._chan_radius[c]
                profile = np.exp(
                    -np.power(r / r_c, self._chan_sharpness[c])
                )
                intensity = bright * profile
                if c <= 1:
                    limb = 0.35 * bright * np.exp(
                        -np.square((r - 1.2 * r_c) / 0.08)
                    )
                    intensity = intensity + limb
                out[:, v, c] = (intensity / (1.0 + intensity)).astype(np.float32)[
                    :, 0
                ]
        return out

    def images_flat_dim(self) -> int:
        """Flattened per-sample image feature width."""
        return self.views * self.channels * self.image_size * self.image_size
