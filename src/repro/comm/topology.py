"""Rank-to-hardware placement.

A :class:`RankPlacement` records, for every MPI rank of a trainer, which
node it lives on.  Communication cost depends on whether two ranks share a
node (NVLink / shared memory) or not (the node's NIC), and on how many
ranks share each NIC — both derivable from the placement.

The paper uses two placements that matter for the experiments:

- the standard LTFB trainer: 4 nodes x 4 GPUs (16 ranks, 4 per node);
- the single-trainer Fig-11 baseline: 16 nodes x 1 GPU (the data store
  needed the extra node memory to hold the full 10M-sample set).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RankPlacement", "contiguous_placement"]


@dataclass(frozen=True)
class RankPlacement:
    """Maps ranks ``0..n-1`` to node ids.

    ``node_of[i]`` is the node hosting rank ``i``.  Node ids are dense
    ``0..num_nodes-1``.
    """

    node_of: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.node_of:
            raise ValueError("placement must contain at least one rank")
        nodes = set(self.node_of)
        if nodes != set(range(len(nodes))):
            raise ValueError(f"node ids must be dense 0..k-1, got {sorted(nodes)}")

    @property
    def num_ranks(self) -> int:
        return len(self.node_of)

    @property
    def num_nodes(self) -> int:
        return len(set(self.node_of))

    def ranks_on_node(self, node: int) -> list[int]:
        return [r for r, n in enumerate(self.node_of) if n == node]

    @property
    def max_ranks_per_node(self) -> int:
        counts: dict[int, int] = {}
        for n in self.node_of:
            counts[n] = counts.get(n, 0) + 1
        return max(counts.values())

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of[a] == self.node_of[b]

    def remote_fraction(self, rank: int) -> float:
        """Fraction of *other* ranks that are off-node from ``rank``.

        Drives the data-store shuffle model: a uniformly random sample
        owner is remote with this probability.
        """
        if self.num_ranks == 1:
            return 0.0
        local = len(self.ranks_on_node(self.node_of[rank])) - 1
        return 1.0 - local / (self.num_ranks - 1)


def contiguous_placement(num_ranks: int, ranks_per_node: int) -> RankPlacement:
    """Pack ranks onto nodes in order, ``ranks_per_node`` at a time.

    ``contiguous_placement(16, 4)`` is the paper's standard trainer;
    ``contiguous_placement(16, 1)`` is the Fig-11 single-trainer baseline.
    """
    if num_ranks <= 0:
        raise ValueError(f"num_ranks must be positive, got {num_ranks}")
    if ranks_per_node <= 0:
        raise ValueError(f"ranks_per_node must be positive, got {ranks_per_node}")
    return RankPlacement(tuple(r // ranks_per_node for r in range(num_ranks)))
