"""Alpha-beta communication cost models over a two-level topology.

Latency/bandwidth ("alpha-beta") models are the standard analytic tool for
HPC collectives: a message of ``B`` bytes over a link costs
``alpha + B / bandwidth``.  Two link classes exist, matching Lassen:

- *intra-node* (NVLink2 / shared memory between ranks on one node), and
- *inter-node* (the node's InfiniBand NIC, **shared** by all ranks on the
  node — the sharing is what makes a flat ring across multi-GPU nodes so
  much worse than a hierarchical allreduce, and is modelled explicitly).

These models price the paper's communication phases:

- gradient allreduce inside a trainer (every training step, Fig. 9);
- the data-store mini-batch shuffle (every step, Fig. 10);
- LTFB generator exchange between trainer pairs (every tournament round,
  Fig. 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comm.topology import RankPlacement

__all__ = ["LinkParams", "CollectiveCostModel"]


@dataclass(frozen=True)
class LinkParams:
    """One link class: start-up latency (s) and bandwidth (bytes/s)."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")

    def transfer_time(self, nbytes: float) -> float:
        """alpha + B/bw for one message."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth


class CollectiveCostModel:
    """Prices point-to-point and collective operations for a placement."""

    def __init__(self, intra_node: LinkParams, inter_node: LinkParams) -> None:
        self.intra = intra_node
        self.inter = inter_node

    # -- point to point -----------------------------------------------------

    def p2p_time(self, nbytes: float, same_node: bool) -> float:
        link = self.intra if same_node else self.inter
        return link.transfer_time(nbytes)

    # -- allreduce ------------------------------------------------------------

    def allreduce_time(self, nbytes: float, placement: RankPlacement) -> float:
        """Ring / hierarchical allreduce of ``nbytes`` per rank.

        - 1 rank: free.
        - single node: ring over NVLink,
          ``2(p-1) a_intra + 2 (p-1)/p B / bw_intra``.
        - multi-node, 1 rank/node: flat inter-node ring,
          ``2(n-1) a_inter + 2 (n-1)/n B / bw_inter``.
        - multi-node, g ranks/node: hierarchical reduce-scatter within the
          node, concurrent inter-node rings on 1/g shards (which together
          push the full ``B`` through each shared NIC), then an intra-node
          allgather:
          ``2(g-1) a_intra + 2(g-1)/g B / bw_intra
            + 2(n-1) a_inter + 2(n-1)/n B / bw_inter``.
        """
        p = placement.num_ranks
        if p == 1 or nbytes == 0:
            return 0.0
        n = placement.num_nodes
        g = placement.max_ranks_per_node
        if n == 1:
            return 2 * (p - 1) * self.intra.latency + 2 * (
                (p - 1) / p
            ) * nbytes / self.intra.bandwidth
        if g == 1:
            return 2 * (n - 1) * self.inter.latency + 2 * (
                (n - 1) / n
            ) * nbytes / self.inter.bandwidth
        intra = 2 * (g - 1) * self.intra.latency + 2 * (
            (g - 1) / g
        ) * nbytes / self.intra.bandwidth
        inter = 2 * (n - 1) * self.inter.latency + 2 * (
            (n - 1) / n
        ) * nbytes / self.inter.bandwidth
        return intra + inter

    # -- broadcast ---------------------------------------------------------------

    def bcast_time(self, nbytes: float, placement: RankPlacement) -> float:
        """Binomial-tree broadcast: inter-node tree, then intra-node tree."""
        p = placement.num_ranks
        if p == 1 or nbytes == 0:
            return 0.0
        n = placement.num_nodes
        g = placement.max_ranks_per_node
        t = 0.0
        if n > 1:
            t += math.ceil(math.log2(n)) * self.inter.transfer_time(nbytes)
        if g > 1:
            t += math.ceil(math.log2(g)) * self.intra.transfer_time(nbytes)
        return t

    # -- data-store shuffle --------------------------------------------------------

    def shuffle_time(
        self,
        recv_bytes_per_rank: float,
        placement: RankPlacement,
        messages_per_rank: int = 1,
    ) -> float:
        """Personalized exchange where each rank receives
        ``recv_bytes_per_rank`` from uniformly random owner ranks.

        A fraction :meth:`RankPlacement.remote_fraction` of the bytes
        crosses the NIC, which is shared by all ranks on the node; the rest
        moves over intra-node links in parallel.  This is the per-step
        mini-batch shuffle of the distributed data store (Section III-B of
        the paper); the store overlaps it with compute on background
        threads, so callers typically combine it with compute time via an
        overlap rule rather than adding it outright.
        """
        if recv_bytes_per_rank < 0:
            raise ValueError("recv_bytes_per_rank must be >= 0")
        p = placement.num_ranks
        if p == 1 or recv_bytes_per_rank == 0:
            return 0.0
        f_remote = max(placement.remote_fraction(r) for r in range(p))
        g = placement.max_ranks_per_node
        # Every rank on a node both sends and receives its remote share
        # through the same NIC; charge the receive path (full duplex).
        nic_bytes = recv_bytes_per_rank * f_remote * g
        t_remote = self.inter.latency * messages_per_rank + (
            nic_bytes / self.inter.bandwidth
        )
        t_local = self.intra.latency * messages_per_rank + (
            recv_bytes_per_rank * (1.0 - f_remote) / self.intra.bandwidth
        )
        return max(t_remote, t_local)

    # -- LTFB model exchange -----------------------------------------------------

    def model_exchange_time(self, state_nbytes: float) -> float:
        """Swap of model state between two paired trainers.

        Trainers live on disjoint node sets, so the exchange crosses the
        fabric; sends in the two directions proceed concurrently (full
        duplex), so the cost is one inter-node transfer of the state.
        """
        if state_nbytes < 0:
            raise ValueError("state_nbytes must be >= 0")
        if state_nbytes == 0:
            return 0.0
        return self.inter.transfer_time(state_nbytes)
