"""Reference implementations of the collective algorithms the cost models
price, runnable over the SPMD communicator.

The :class:`~repro.comm.costmodel.CollectiveCostModel` charges for ring
reduce-scatter/allgather and for a hierarchical (intra-node, inter-node)
allreduce.  These are the corresponding executable algorithms; tests
verify they produce exactly the arithmetic the trainers rely on
(sum-allreduce of gradient buffers) with the communication pattern the
models assume (2(p-1) ring steps; intra-node reduction around an
inter-node ring).

They operate on 1-D float arrays (gradient buffers are flattened views in
practice) and never mutate their inputs.
"""

from __future__ import annotations

import numpy as np

from repro.comm.spmd import SpmdComm
from repro.comm.topology import RankPlacement

__all__ = [
    "ring_reduce_scatter",
    "ring_allgather",
    "ring_allreduce",
    "hierarchical_allreduce",
]


def _chunks(n: int, p: int) -> list[slice]:
    """Split ``range(n)`` into p contiguous chunks (sizes differ by <= 1)."""
    bounds = np.linspace(0, n, p + 1).astype(int)
    return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


def ring_reduce_scatter(comm: SpmdComm, values: np.ndarray) -> np.ndarray:
    """Ring reduce-scatter: after p-1 steps, rank r holds the fully
    reduced chunk r.  Returns that chunk."""
    p = comm.size
    values = np.array(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("ring collectives operate on 1-D arrays")
    if p == 1:
        return values
    chunks = _chunks(values.size, p)
    acc = values.copy()
    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    # At step s, rank r sends chunk (r - s) and receives chunk (r - s - 1),
    # accumulating into it; after p-1 steps chunk (r + 1) is complete...
    # with this indexing, rank r ends owning chunk (r + 1) mod p; we
    # relabel at the end so rank r returns chunk r (one extra rotation).
    for step in range(p - 1):
        send_idx = (comm.rank - step) % p
        recv_idx = (comm.rank - step - 1) % p
        comm.send(acc[chunks[send_idx]].copy(), dest=right, tag=("rs", step))
        acc[chunks[recv_idx]] += comm.recv(source=left, tag=("rs", step))
    owned = (comm.rank + 1) % p
    if owned != comm.rank:
        # Rotate ownership so rank r returns chunk r (a final shift,
        # equivalent to starting the ring one position earlier).
        comm.send(acc[chunks[owned]].copy(), dest=owned, tag=("rs", "fix"))
        return comm.recv(source=(comm.rank - 1) % p, tag=("rs", "fix"))
    return acc[chunks[owned]]


def ring_allgather(comm: SpmdComm, chunk: np.ndarray, total_size: int) -> np.ndarray:
    """Ring allgather: every rank contributes its chunk; all ranks end
    with the concatenation (chunk r at slot r)."""
    p = comm.size
    chunk = np.asarray(chunk, dtype=np.float64)
    if p == 1:
        return chunk.copy()
    chunks = _chunks(total_size, p)
    out = np.zeros(total_size, dtype=np.float64)
    out[chunks[comm.rank]] = chunk
    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    for step in range(p - 1):
        send_idx = (comm.rank - step) % p
        recv_idx = (comm.rank - step - 1) % p
        comm.send(out[chunks[send_idx]].copy(), dest=right, tag=("ag", step))
        out[chunks[recv_idx]] = comm.recv(source=left, tag=("ag", step))
    return out


def ring_allreduce(comm: SpmdComm, values: np.ndarray) -> np.ndarray:
    """Bandwidth-optimal ring allreduce: reduce-scatter then allgather —
    the 2(p-1)-step pattern the cost model charges for."""
    values = np.asarray(values, dtype=np.float64)
    chunk = ring_reduce_scatter(comm, values)
    return ring_allgather(comm, chunk, values.size)


def hierarchical_allreduce(
    comm: SpmdComm, values: np.ndarray, placement: RankPlacement
) -> np.ndarray:
    """Two-level allreduce matching the cost model's hierarchy: reduce to
    each node's leader, ring allreduce across leaders, broadcast within
    the node.

    ``placement`` maps ranks to nodes (must match ``comm.size``).
    """
    if placement.num_ranks != comm.size:
        raise ValueError(
            f"placement has {placement.num_ranks} ranks, comm has {comm.size}"
        )
    values = np.asarray(values, dtype=np.float64)
    node = placement.node_of[comm.rank]
    local_ranks = placement.ranks_on_node(node)
    leader = local_ranks[0]
    leaders = [placement.ranks_on_node(n)[0] for n in range(placement.num_nodes)]

    # Intra-node reduction to the leader.
    if comm.rank == leader:
        total = values.copy()
        for r in local_ranks[1:]:
            total += comm.recv(source=r, tag="h-reduce")
    else:
        comm.send(values, dest=leader, tag="h-reduce")
        total = None

    # Inter-node ring among leaders (pairwise ring over the leader list).
    if comm.rank == leader:
        n_nodes = len(leaders)
        if n_nodes > 1:
            my_pos = leaders.index(comm.rank)
            right = leaders[(my_pos + 1) % n_nodes]
            left = leaders[(my_pos - 1) % n_nodes]
            acc = total
            partial = total.copy()
            for step in range(n_nodes - 1):
                comm.send(partial, dest=right, tag=("h-ring", step))
                partial = comm.recv(source=left, tag=("h-ring", step))
                acc = acc + partial
            total = acc

    # Intra-node broadcast of the result.
    if comm.rank == leader:
        for r in local_ranks[1:]:
            comm.send(total, dest=r, tag="h-bcast")
        return total
    return comm.recv(source=leader, tag="h-bcast")
