"""A functional, thread-backed SPMD communicator (mpi4py-flavoured).

``run_spmd(size, fn)`` launches ``size`` rank threads, each receiving an
:class:`SpmdComm` bound to its rank, and returns the per-rank results.
The API follows mpi4py's lowercase generic-object conventions
(``send``/``recv``/``bcast``/``scatter``/``gather``/``allreduce``/
``alltoall``); collectives are built from point-to-point messages, so the
communicator doubles as a reference implementation of the collective
algorithms the cost models price.

This backend exists so the distributed data store and LTFB exchange logic
can be executed *for real* (ranks genuinely exchanging objects through
mailboxes) in tests and examples.  It makes no timing claims — performance
questions go through :mod:`repro.comm.costmodel`.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence

__all__ = ["SpmdComm", "SpmdError", "Request", "run_spmd"]


class SpmdError(RuntimeError):
    """Raised on misuse or when a peer rank has failed."""


class Request:
    """Handle for a non-blocking operation (mpi4py-style).

    ``isend`` completes immediately (sends are buffered); ``irecv``
    completes when the message arrives.  ``wait`` returns the received
    object (or ``None`` for sends); ``test`` polls without blocking.
    """

    def __init__(self, poll, blocking_wait) -> None:
        self._poll = poll
        self._wait = blocking_wait
        self._done = False
        self._value = None

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(done, value_or_None)``."""
        if not self._done:
            ok, value = self._poll()
            if ok:
                self._done, self._value = True, value
        return self._done, self._value

    def wait(self) -> Any:
        """Block until complete; return the result."""
        if not self._done:
            self._done, self._value = True, self._wait()
        return self._value


class _Fabric:
    """Shared state between the ranks of one SPMD run."""

    def __init__(self, size: int, timeout: float) -> None:
        self.size = size
        self.timeout = timeout
        self.mailboxes: dict[tuple[int, int, Any], queue.Queue] = {}
        self._mb_lock = threading.Lock()
        self.barrier = threading.Barrier(size)
        self.failed = threading.Event()

    def mailbox(self, src: int, dst: int, tag: Any) -> queue.Queue:
        key = (src, dst, tag)
        with self._mb_lock:
            q = self.mailboxes.get(key)
            if q is None:
                q = self.mailboxes[key] = queue.Queue()
            return q


class SpmdComm:
    """Communicator handle owned by one rank thread."""

    def __init__(self, fabric: _Fabric, rank: int) -> None:
        self._fabric = fabric
        self.rank = rank
        self.size = fabric.size
        self._coll_seq = 0  # SPMD programs call collectives in lock-step

    # -- point-to-point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a picklable-style object to ``dest`` (buffered, non-blocking)."""
        self._check_peer(dest)
        self._fabric.mailbox(self.rank, dest, tag).put(obj)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive the next object sent by ``source`` with ``tag``."""
        self._check_peer(source)
        q = self._fabric.mailbox(source, self.rank, tag)
        try:
            return q.get(timeout=self._fabric.timeout)
        except queue.Empty:
            raise SpmdError(
                f"rank {self.rank}: recv from {source} tag {tag!r} timed out "
                f"after {self._fabric.timeout}s"
                + (" (a peer rank failed)" if self._fabric.failed.is_set() else "")
            ) from None

    def sendrecv(self, obj: Any, peer: int, tag: int = 0) -> Any:
        """Exchange objects with ``peer`` (deadlock-free pairwise swap)."""
        self.send(obj, peer, tag)
        return self.recv(peer, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send.  Buffered sends complete immediately; the
        request exists for mpi4py-style symmetry (``req.wait()``)."""
        self.send(obj, dest, tag)
        return Request(poll=lambda: (True, None), blocking_wait=lambda: None)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive: returns a :class:`Request` whose
        ``wait()`` yields the message (the data-store shuffle overlaps
        these with compute in the real system)."""
        self._check_peer(source)
        q = self._fabric.mailbox(source, self.rank, tag)

        def poll():
            try:
                return True, q.get_nowait()
            except queue.Empty:
                return False, None

        def blocking_wait():
            try:
                return q.get(timeout=self._fabric.timeout)
            except queue.Empty:
                raise SpmdError(
                    f"rank {self.rank}: irecv from {source} tag {tag!r} "
                    f"timed out after {self._fabric.timeout}s"
                ) from None

        return Request(poll=poll, blocking_wait=blocking_wait)

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        try:
            self._fabric.barrier.wait(timeout=self._fabric.timeout)
        except threading.BrokenBarrierError:
            raise SpmdError(
                f"rank {self.rank}: barrier broken (peer failure or timeout)"
            ) from None

    def _ctag(self, kind: str) -> tuple:
        self._coll_seq += 1
        return ("__coll__", kind, self._coll_seq)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_peer(root)
        tag = self._ctag("bcast")
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self._fabric.mailbox(root, r, tag).put(obj)
            return obj
        return self._recv_tagged(root, tag)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        tag = self._ctag("scatter")
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise SpmdError(
                    f"scatter root needs exactly {self.size} items, got "
                    f"{None if objs is None else len(objs)}"
                )
            for r in range(self.size):
                if r != root:
                    self._fabric.mailbox(root, r, tag).put(objs[r])
            return objs[root]
        return self._recv_tagged(root, tag)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        tag = self._ctag("gather")
        if self.rank == root:
            out = [None] * self.size
            out[root] = obj
            for r in range(self.size):
                if r != root:
                    out[r] = self._recv_tagged(r, tag)
            return out
        self._fabric.mailbox(self.rank, root, tag).put(obj)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce with ``op`` (default: ``+``, which is elementwise for
        NumPy arrays) and distribute the result to all ranks."""
        contributions = self.allgather(value)
        if op is None:
            total = contributions[0]
            for c in contributions[1:]:
                total = total + c
            return total
        total = contributions[0]
        for c in contributions[1:]:
            total = op(total, c)
        return total

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalized exchange: send ``objs[r]`` to rank r; receive one
        object from every rank (including self)."""
        if len(objs) != self.size:
            raise SpmdError(
                f"alltoall needs exactly {self.size} items, got {len(objs)}"
            )
        tag = self._ctag("alltoall")
        for r in range(self.size):
            if r != self.rank:
                self._fabric.mailbox(self.rank, r, tag).put(objs[r])
        out = [None] * self.size
        out[self.rank] = objs[self.rank]
        for r in range(self.size):
            if r != self.rank:
                out[r] = self._recv_tagged(r, tag)
        return out

    # -- internals --------------------------------------------------------------

    def _recv_tagged(self, source: int, tag: tuple) -> Any:
        q = self._fabric.mailbox(source, self.rank, tag)
        try:
            return q.get(timeout=self._fabric.timeout)
        except queue.Empty:
            raise SpmdError(
                f"rank {self.rank}: collective {tag} timed out waiting on "
                f"rank {source}"
            ) from None

    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise SpmdError(f"invalid peer rank {rank} (size {self.size})")


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 60.0,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``size`` rank threads; return per-rank results.

    If any rank raises, the first exception (by rank order) is re-raised in
    the caller after all threads have terminated.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    fabric = _Fabric(size, timeout)
    results: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size

    def runner(rank: int) -> None:
        comm = SpmdComm(fabric, rank)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            fabric.failed.set()
            fabric.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for exc in errors:
        if exc is not None:
            raise exc
    return results
