"""Communication substrate (Aluminum analog).

Two complementary pieces:

- :mod:`repro.comm.spmd` — a *functional* thread-backed SPMD communicator
  with an mpi4py-flavoured API (``send``/``recv``/``bcast``/``allreduce``/
  ``alltoall``/…).  Used to run the distributed data store and collective
  algorithms for real, in-process, for tests and examples.
- :mod:`repro.comm.costmodel` — *performance* alpha-beta cost models for
  point-to-point and collective operations over a machine topology
  (NVLink intra-node vs InfiniBand inter-node).  Used by the cluster
  performance simulator to price communication at Lassen scale.

The split mirrors the reproduction strategy: algorithms run for real at
laptop scale; timing behaviour is modelled at paper scale.
"""

from repro.comm.topology import RankPlacement, contiguous_placement
from repro.comm.costmodel import CollectiveCostModel, LinkParams
from repro.comm.spmd import SpmdComm, run_spmd
from repro.comm.algorithms import (
    hierarchical_allreduce,
    ring_allgather,
    ring_allreduce,
    ring_reduce_scatter,
)

__all__ = [
    "RankPlacement",
    "contiguous_placement",
    "LinkParams",
    "CollectiveCostModel",
    "SpmdComm",
    "run_spmd",
    "ring_reduce_scatter",
    "ring_allgather",
    "ring_allreduce",
    "hierarchical_allreduce",
]
