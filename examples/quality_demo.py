"""The quality-observability acceptance demo: catch mode collapse live,
then watch the serve gate refuse the collapsed winner.

A short streamed LTFB campaign runs with the quality plane attached — a
:class:`~repro.eval.QualityProbe` scoring every generator against the
ground-truth reservoir each round, the
:class:`~repro.telemetry.LiveAggregator` z-scoring those divergence
readings, and a :class:`~repro.telemetry.HealthMonitor` folding them
against each trainer's best.  One fault is injected deliberately: after
round ``collapse_round`` ends, trainer 0's generator weights are zeroed
— its outputs collapse to a constant, the exact failure mode whose
losses stay unremarkable while the output *distribution* dies.

The demo then proves the acceptance contract:

- a ``quality_collapse`` alert landed in ``History.health_warnings``
  *during* the run (a probe callback snapshots the warning count per
  round);
- the checkpoint published with the collapsed trainer as winner is
  **refused** by :meth:`~repro.serve.ModelRegistry.refresh` — the
  healthy incumbent keeps serving and the refusal shows up in the
  server's ``quality_gate`` stats;
- the ``python -m repro.telemetry watch`` rendering of the trace shows
  the per-trainer divergence readings.

Run it::

    python examples/quality_demo.py [out-dir]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import LtfbConfig, LtfbDriver
from repro.core.checkpoint import CheckpointStore
from repro.eval import QualityProbe
from repro.exec import resolve_backend
from repro.experiments.streaming import StreamingSpec, build_streaming_run
from repro.serve import ModelRegistry, ServeConfig, SurrogateServer
from repro.telemetry import (
    Callback,
    HealthMonitor,
    JsonlTraceWriter,
    LiveAggregator,
)


class CollapseInjector(Callback):
    """Zeroes one generator after ``target_round`` ends: its outputs
    degenerate to a constant while training marches on."""

    def __init__(self, trainers, target_round: int) -> None:
        self.trainers = trainers
        self.target_round = target_round

    def on_round_end(self, event) -> None:
        if event.payload.get("round") == self.target_round:
            victim = self.trainers[0]
            state = victim.surrogate.get_generator_state()
            victim.surrogate.set_generator_state(
                {k: v * 0.0 for k, v in state.items()}
            )


class SummaryCapture(Callback):
    """Snapshots the probe's eval summary the round the collapse lands —
    LTFB adopts healthy weights back into the victim a round later, so
    the end-of-run summary would no longer show the damage."""

    def __init__(self, probe: QualityProbe, winner: str, target_round: int) -> None:
        self.probe = probe
        self.winner = winner
        self.target_round = target_round
        self.summary: dict | None = None

    def on_round_end(self, event) -> None:
        if event.payload.get("round") == self.target_round:
            self.summary = self.probe.summary(winner=self.winner)


class WarningProbe(Callback):
    """Snapshots ``History.health_warnings`` growth per round — the proof
    that the collapse alert arrives *during* the run."""

    def __init__(self) -> None:
        self.per_round: list[int] = []
        self._history = None

    def on_run_begin(self, driver) -> None:
        self._history = driver.history

    def on_round_end(self, event) -> None:
        self.per_round.append(len(self._history.health_warnings))


def main(out_dir: str = "quality-demo") -> int:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "trace.jsonl"

    setup = build_streaming_run(
        StreamingSpec(seed=7, k=2, n_design=256, prime_samples=64)
    )
    rounds, collapse_round = 6, 4
    # KL for the ranking metric: unbounded above (unlike JS), so the
    # injected collapse rises clearly above the healthy trend even at
    # demo scale, where the tiny surrogate saturates the estimator.
    probe = QualityProbe(capacity=256, metric="kl", seed=11)
    aggregator = LiveAggregator(
        # Sensitive detector so the single injected spike trips
        # deterministically at demo scale: three healthy readings are
        # enough warmup, two sigma is enough surprise.
        z_threshold=2.0,
        detector_warmup=2,
        warmup_rounds=1,
        cooldown_rounds=0,
    )
    # Demo-scale estimates sit near the estimator's ceiling, so the
    # healthy-floor multiple is tight: any post-floor rise above 5% is
    # the injected collapse, not wobble (real campaigns keep the default
    # generous factor).
    monitor = HealthMonitor(quality_factor=1.05, quality_min_points=2)
    warnings_probe = WarningProbe()
    victim = setup.trainers[0].name
    capture = SummaryCapture(probe, victim, collapse_round)

    driver = LtfbDriver(
        setup.trainers,
        setup.rngs.generator("pairing"),
        LtfbConfig(steps_per_round=10, rounds=rounds),
        eval_batch=setup.eval_batch,
        backend=resolve_backend("serial"),
        source=setup.source,
    )
    # Callback order matters: the injector poisons at round end *before*
    # the probe measures, so the collapse is visible the round it lands.
    history = driver.run(
        callbacks=[
            JsonlTraceWriter(trace_path),
            CollapseInjector(setup.trainers, collapse_round),
            probe,
            capture,
            aggregator,
            monitor,
            warnings_probe,
        ]
    )

    # -- acceptance: quality_collapse visible in History DURING the run -----
    collapse_warnings = [
        w for w in history.health_warnings if w.kind == "quality_collapse"
    ]
    assert collapse_warnings, [w.kind for w in history.health_warnings]
    assert any(w.trainer == victim for w in collapse_warnings)
    # The warning count grew at the collapse round, before the run ended.
    assert warnings_probe.per_round[collapse_round] >= 1, (
        warnings_probe.per_round
    )
    collapse_alerts = [
        a for a in aggregator.alerts if a.kind == "quality_collapse"
    ]
    assert collapse_alerts, [a.kind for a in aggregator.alerts]

    # The probe trajectory shows the blowup: the victim's divergence
    # after the collapse dwarfs its healthy floor.
    victim_series = {r: m["kl"] for r, m in probe.trajectory[victim]}
    floor = min(victim_series[r] for r in range(collapse_round))
    spike = victim_series[collapse_round]
    assert spike > 1.05 * floor, (floor, spike)

    # -- acceptance: the serve gate refuses the collapsed winner ------------
    store = CheckpointStore(out / "ckpts")
    store.save_autoencoder(setup.autoencoder)
    healthy = setup.trainers[1]
    store.save_population(
        setup.trainers,
        "healthy-winner",
        winner=healthy.name,
        eval_summary=probe.summary(winner=healthy.name),
    )
    registry = ModelRegistry(store, max_batch=8, quality_tolerance=0.02)
    server = SurrogateServer(
        registry, ServeConfig(max_batch=8, max_delay_s=0.002)
    )
    registry.load("healthy-winner")

    time.sleep(0.01)  # keep the manifest mtimes strictly ordered
    assert capture.summary is not None
    store.save_population(
        setup.trainers,
        "collapsed-winner",
        winner=victim,
        eval_summary=capture.summary,
    )
    assert registry.refresh() is None, "gate must refuse the collapsed winner"
    assert registry.current().tag == "healthy-winner"
    decision = registry.last_gate
    assert decision is not None and decision.reason == "regressed"
    gate_stats = server.stats()["quality_gate"]
    assert gate_stats["refusals"] == 1, gate_stats
    # The refused tag is remembered: polling again is silent.
    assert registry.refresh() is None
    assert server.stats()["quality_gate"]["checks"] == 1

    # -- the watch CLI rendering of the same trace --------------------------
    from repro.telemetry.__main__ import render_watch, watch_snapshot

    snap = watch_snapshot(trace_path)
    rendering = render_watch(snap, path=trace_path)
    assert "quality[kl]" in rendering, rendering
    print(rendering)
    print()

    report = {
        "rounds_completed": history.rounds_completed,
        "collapse_round": collapse_round,
        "victim": victim,
        "victim_divergence": {str(r): v for r, v in victim_series.items()},
        "warnings": [w.render() for w in history.health_warnings],
        "warnings_per_round": warnings_probe.per_round,
        "quality_collapse_fired": bool(collapse_warnings),
        "quality_snapshot": snap["quality"],
        "gate": {
            "tag": decision.tag,
            "allowed": decision.allowed,
            "reason": decision.reason,
            "candidate": decision.candidate,
            "incumbent": decision.incumbent,
            "metric": decision.metric,
        },
        "serving_tag": registry.current().tag,
        "quality_gate_stats": gate_stats,
    }
    (out / "report.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"ok: {history.rounds_completed} rounds, collapse flagged at round "
        f"{collapse_round} (divergence {floor:.3f} -> {spike:.3f}), gate "
        f"refused {decision.tag!r}, still serving "
        f"{registry.current().tag!r}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
