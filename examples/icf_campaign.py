#!/usr/bin/env python
"""The full cognitive-simulation pipeline, end to end.

Chains every system the paper describes:

1. **Campaign** — the workflow engine runs the (synthetic) JAG simulator
   over a spectral-style design and packs exploration-ordered bundle files
   onto the simulated parallel file system;
2. **Ingestion** — each LTFB trainer preloads its partition of the bundle
   files into the distributed in-memory data store (one open per file per
   trainer, zero file reads afterwards);
3. **Training** — a shared multimodal autoencoder is trained a priori,
   then an LTFB population trains CycleGAN surrogates over the silos,
   feeding from the data stores;
4. **Science** — the winning surrogate answers the questions the paper
   motivates: fast forward prediction and inverse inference.

Run:  python examples/icf_campaign.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cluster import SimulatedFilesystem
from repro.core import (
    EnsembleSpec,
    LtfbConfig,
    LtfbDriver,
    Trainer,
    TrainerConfig,
    pretrain_autoencoder,
)
from repro.datastore import DistributedDataStore, StoreReader, partition_items
from repro.jag import JagDatasetConfig, small_schema
from repro.models import ICFSurrogate, small_config
from repro.utils.rng import RngFactory
from repro.utils.units import format_bytes
from repro.workflow import WorkerPoolSpec, run_campaign

K_TRAINERS = 4
SAMPLES = 4096
SAMPLES_PER_BUNDLE = 64
BATCH = 64
ROUNDS, STEPS = 10, 20


def main() -> None:
    rngs = RngFactory(314)

    # -- 1. Campaign -------------------------------------------------------
    print("[campaign] running JAG ensemble under the workflow engine ...")
    fs = SimulatedFilesystem()
    campaign = run_campaign(
        JagDatasetConfig(n_samples=SAMPLES, schema=small_schema(12), seed=314),
        fs,
        pool=WorkerPoolSpec(num_workers=64, tasks_per_job=100),
        samples_per_bundle=SAMPLES_PER_BUNDLE,
    )
    dataset = campaign.dataset
    print(
        f"[campaign] {SAMPLES} simulations in "
        f"{campaign.stats.makespan / 3600:.1f} simulated hours "
        f"({campaign.samples_per_simulated_hour:.0f} samples/h, "
        f"overhead {campaign.stats.overhead_fraction:.1%}); "
        f"{len(campaign.bundle_paths)} bundles, {format_bytes(fs.total_bytes)}"
    )

    # -- 2. Partition + preload the data stores -----------------------------
    train_ids, val_ids = dataset.train_val_split(0.12, mode="strided")
    val_batch = {k: v[val_ids] for k, v in dataset.fields.items()}
    spec = EnsembleSpec(
        k=K_TRAINERS,
        surrogate=small_config(dataset.schema, batch_size=BATCH),
        trainer=TrainerConfig(batch_size=BATCH),
        ae_epochs=8,
        hyperparam_jitter=0.25,
    )
    autoencoder = pretrain_autoencoder(dataset, train_ids, rngs, spec)

    # Trainers read their silo straight from the bundle FILES through the
    # data store (the quality experiments elsewhere shortcut through
    # in-memory arrays; this example exercises the full ingestion path).
    silo_paths = partition_items(campaign.bundle_paths, K_TRAINERS)
    tournament_ids = train_ids[:: int(1 / spec.tournament_fraction)]
    tournament_batch = {k: v[tournament_ids] for k, v in dataset.fields.items()}
    trainers = []
    for i, paths in enumerate(silo_paths):
        child = rngs.child(f"trainer{i}")
        store = DistributedDataStore(num_ranks=4, bytes_per_rank=10**9)
        silo_ids = np.concatenate(
            [fs.read_file(p).sample_ids for p in paths]
        )
        silo_ids = np.setdiff1d(silo_ids, np.concatenate([val_ids, tournament_ids]))
        reader = StoreReader(
            fs,
            campaign.bundle_paths,
            SAMPLES_PER_BUNDLE,
            silo_ids,
            child.generator("reader"),
            store,
            mode="preload",
        )
        cfg = dataclasses.replace(spec.surrogate)
        surrogate = ICFSurrogate(child, cfg, autoencoder)
        trainers.append(
            Trainer(f"trainer{i:02d}", surrogate, reader, tournament_batch, spec.trainer)
        )
        drive = dataset.params[silo_ids, 0]
        print(
            f"[ingest] {trainers[-1].name}: preloaded {store.num_cached} samples "
            f"({format_bytes(sum(store.shard_bytes(r) for r in range(4)))}), "
            f"drive band [{drive.min():.2f}, {drive.max():.2f}]"
        )
    opens_after_preload = fs.stats.opens

    # -- 3. LTFB training -----------------------------------------------------
    print(f"[train] LTFB: {K_TRAINERS} trainers, {ROUNDS} rounds x {STEPS} steps")
    driver = LtfbDriver(
        trainers,
        rngs.generator("pairing"),
        LtfbConfig(steps_per_round=STEPS, rounds=ROUNDS),
        eval_batch=val_batch,
    )
    history = driver.run()
    best, loss = driver.best_trainer()
    print(
        f"[train] winner {best.name}: val loss {loss:.3f}, "
        f"adoption rate {history.adoption_rate():.2f}, "
        f"{format_bytes(history.exchange_bytes)} of generator exchanges"
    )
    assert fs.stats.opens == opens_after_preload, "store must not touch the FS"
    print("[train] file opens during training: 0 (data store invariant holds)")

    # -- 4. Use the surrogate ---------------------------------------------------
    sample = {k: v[:4] for k, v in val_batch.items()}
    scalars_hat, _ = best.surrogate.predict_outputs(sample["params"])
    truth = dataset.denormalize_scalars(sample["scalars"])
    pred = dataset.denormalize_scalars(scalars_hat)
    print("\n[science] forward surrogate, log10(yield) for 4 validation shots:")
    print(f"  truth:     {np.round(truth[:, 0], 2)}")
    print(f"  predicted: {np.round(pred[:, 0], 2)}")
    x_hat = best.surrogate.invert(sample["scalars"], sample["images"])
    err = np.abs(x_hat - sample["params"]).mean()
    print(f"[science] inverse inference mean |error| over 5-D inputs: {err:.3f}")


if __name__ == "__main__":
    main()
