#!/usr/bin/env python
"""Paper-scale performance study: regenerate Figures 9, 10 and 11.

Uses the calibrated Lassen performance model (compute + collectives +
parallel file system) over the paper-scale CycleGAN architecture and the
10M-sample dataset geometry.  Prints the three series with the paper's
headline numbers alongside, plus a per-step cost breakdown and a what-if
sweep over the interconnect (the kind of question the models exist to
answer).

Run:  python examples/ltfb_scaling_study.py
"""

from __future__ import annotations

import dataclasses

from repro.cluster import lassen
from repro.comm.costmodel import LinkParams
from repro.core.perfmodel import (
    IngestionMode,
    PerfDataset,
    TrainerPerfModel,
    TrainerResources,
)
from repro.experiments import fig09_data_parallel, fig10_datastore, fig11_ltfb_scaling
from repro.jag import paper_schema
from repro.models import paper_architecture
from repro.utils.units import GB, format_time


def main() -> None:
    print(fig09_data_parallel.run().render())
    print()
    print(fig10_datastore.run().render())
    print()
    print(fig11_ltfb_scaling.run().render())

    # Per-step breakdown at the paper's standard trainer geometry.
    machine = lassen()
    arch = paper_architecture()
    model = TrainerPerfModel(
        machine,
        arch,
        TrainerResources(16, 4),
        PerfDataset(1_000_000, paper_schema().sample_nbytes),
        IngestionMode.STORE_PRELOAD,
        global_batch=128,
    )
    bd = model.step_breakdown(steady=True)
    print("\nper-step cost breakdown (16 GPUs / 4 nodes, preloaded store):")
    print(f"  compute            {format_time(bd.compute)}")
    print(f"  framework overhead {format_time(bd.overhead)}")
    print(f"  gradient allreduce {format_time(bd.allreduce)}")
    print(f"  exposed shuffle    {format_time(bd.shuffle_exposed)}")
    print(f"  total              {format_time(bd.total)}")

    # What-if: single-rail EDR instead of dual-rail.
    print("\nwhat-if: single-rail InfiniBand (12.5 GB/s per node):")
    slow_node = dataclasses.replace(
        machine.node, inter_node=LinkParams(latency=1.5e-6, bandwidth=12.5 * GB)
    )
    slow = machine.with_(node=slow_node)
    for label, m in (("dual-rail", machine), ("single-rail", slow)):
        t = TrainerPerfModel(
            m,
            arch,
            TrainerResources(16, 4),
            PerfDataset(1_000_000, paper_schema().sample_nbytes),
            IngestionMode.STORE_PRELOAD,
            global_batch=128,
        )
        print(
            f"  {label:12s} allreduce {format_time(t.allreduce_time())}, "
            f"steady epoch {format_time(t.epoch_time())}"
        )


if __name__ == "__main__":
    main()
