#!/usr/bin/env python
"""Serving quickstart: checkpoint a population, serve it, hot-reload it.

Walks the serving plane's public API end to end:

1. train a tiny 2-trainer population and publish it (autoencoder +
   population + tournament winner) through `CheckpointStore`;
2. start an in-process `SurrogateServer` on the newest tag — single
   queries are coalesced into fixed-shape micro-batches, answered from
   an LRU cache when inputs repeat, and stamped with the model version;
3. keep training, publish a better checkpoint, and `refresh()` the
   registry under live traffic — an atomic swap, with every in-flight
   request finishing on the version it started on;
4. drive a short open-loop load and print the latency percentiles.

Run:  python examples/serve_quickstart.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.core import (
    CheckpointStore,
    EnsembleSpec,
    TrainerConfig,
    build_population,
    pretrain_autoencoder,
)
from repro.jag import JagDatasetConfig, generate_dataset, small_schema
from repro.models import small_config
from repro.serve import ModelRegistry, ServeConfig, SurrogateServer, open_loop
from repro.utils.rng import RngFactory


def main() -> None:
    rngs = RngFactory(seed=7)

    # 1. A tiny campaign's worth of artifacts, published to a store.
    print("training a 2-trainer population ...")
    dataset = generate_dataset(
        JagDatasetConfig(n_samples=1024, schema=small_schema(8), seed=7)
    )
    train_ids = np.arange(896)
    spec = EnsembleSpec(
        k=2,
        surrogate=small_config(dataset.schema, batch_size=32),
        trainer=TrainerConfig(batch_size=32),
        ae_epochs=2,
    )
    autoencoder = pretrain_autoencoder(dataset, train_ids, rngs, spec)
    trainers = build_population(dataset, train_ids, rngs, spec, autoencoder)
    for t in trainers:
        t.train_steps(8)

    with tempfile.TemporaryDirectory() as root:
        store = CheckpointStore(root)
        store.save_autoencoder(autoencoder)
        store.save_population(trainers, "round-001", winner=trainers[0].name)

        # 2. Serve the newest tag.  The registry reads the autoencoder
        # and the winner's generator weights through the public
        # checkpoint API; the server owns batching, caching, metrics.
        registry = ModelRegistry(store)
        server = SurrogateServer(
            registry,
            ServeConfig(max_batch=16, max_delay_s=0.002, cache_size=256),
        )
        rng = np.random.default_rng(1)
        with server:
            model = registry.current()
            print(
                f"serving {model.tag!r} v{model.version} "
                f"(winner {model.winner})"
            )
            params = rng.random(
                (64, model.runtime.input_dim), dtype=np.float32
            )
            response = server.predict(params[0])
            print(
                f"  one query -> scalars {response.scalars.shape}, "
                f"images {response.images.shape}, v{response.version}"
            )
            assert server.predict(params[0]).cached  # LRU hit

            # 3. A better winner lands; swap it in under traffic.
            for t in trainers:
                t.train_steps(8)
            store.save_population(
                trainers, "round-002", winner=trainers[1].name
            )
            model = registry.refresh()
            print(
                f"hot-reloaded to {model.tag!r} v{model.version} "
                f"(winner {model.winner})"
            )
            assert not server.predict(params[0]).cached  # cache cleared

            # 4. Open-loop load: requests arrive on a fixed schedule
            # regardless of completion (the honest way to measure a
            # service — no coordinated omission).
            report = open_loop(server, params, qps=300.0, n_requests=150)
            p = report.percentiles()
            print(
                f"open loop @ {report.offered_qps:.0f} qps: "
                f"{report.n_ok}/{report.n_requests} ok, "
                f"p50 {p['p50'] * 1e3:.2f} ms, "
                f"p95 {p['p95'] * 1e3:.2f} ms, "
                f"p99 {p['p99'] * 1e3:.2f} ms"
            )
            stats = server.stats()
            print(
                f"  {stats['batches']} micro-batches, "
                f"{stats['reloads']} reloads, "
                f"cache hits {stats['cache']['hits']}"
            )


if __name__ == "__main__":
    main()
