#!/usr/bin/env python
"""The distributed in-memory data store, demonstrated end to end.

Reproduces Section III-B's behaviour functionally:

1. a JAG campaign writes exploration-ordered bundle files to a simulated
   parallel file system;
2. a naive reader hammers the file system every epoch;
3. the data store (dynamic and preloaded modes) stops touching the file
   system after population, assembling every mini-batch by shuffling
   owner-rank shards (inter- vs intra-node transfers are counted);
4. the same shard/exchange logic runs over real point-to-point messages
   on the thread-backed SPMD communicator.

Run:  python examples/datastore_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import SimulatedFilesystem
from repro.comm import contiguous_placement, run_spmd
from repro.datastore import DistributedDataStore, NaiveReader, StoreReader
from repro.datastore.store import spmd_exchange_minibatch
from repro.jag import JagDatasetConfig, small_schema
from repro.utils.rng import RngFactory
from repro.utils.units import format_bytes
from repro.workflow import WorkerPoolSpec, run_campaign

SAMPLES = 1000
SAMPLES_PER_BUNDLE = 50
BATCH = 40
RANKS = 4


def epoch_stats(fs: SimulatedFilesystem, reader, label: str, epochs: int = 3):
    for epoch in range(epochs):
        before = fs.stats.opens
        for _ in reader.epoch(BATCH):
            pass
        print(
            f"  {label} epoch {epoch}: {fs.stats.opens - before:4d} file opens, "
            f"{format_bytes(fs.stats.bytes_read)} read so far"
        )


def main() -> None:
    rngs = RngFactory(7)

    print("running the JAG campaign under the workflow engine ...")
    fs = SimulatedFilesystem()
    campaign = run_campaign(
        JagDatasetConfig(n_samples=SAMPLES, schema=small_schema(8), seed=7),
        fs,
        pool=WorkerPoolSpec(num_workers=32, tasks_per_job=50),
        samples_per_bundle=SAMPLES_PER_BUNDLE,
    )
    paths = campaign.bundle_paths
    print(
        f"  {SAMPLES} simulations -> {len(paths)} bundle files "
        f"({format_bytes(fs.total_bytes)}); workflow overhead "
        f"{campaign.stats.overhead_fraction:.1%} of worker time"
    )

    ids = np.arange(SAMPLES)

    print("\nnaive ingestion (no data store):")
    naive = NaiveReader(fs, paths, SAMPLES_PER_BUNDLE, ids, rngs.generator("naive"))
    epoch_stats(fs, naive, "naive")
    hot = max(fs.stats.opens_per_file.values())
    print(f"  hottest bundle file was opened {hot} times")

    print("\ndata store, dynamic mode (cache during epoch 0):")
    fs.stats.reset()
    placement = contiguous_placement(RANKS, 2)
    store = DistributedDataStore(RANKS, bytes_per_rank=10**8, placement=placement)
    dynamic = StoreReader(
        fs, paths, SAMPLES_PER_BUNDLE, ids, rngs.generator("dyn"), store, "dynamic"
    )
    epoch_stats(fs, dynamic, "dynamic")
    print(
        f"  store: {store.num_cached} samples cached, shuffle "
        f"{store.stats.remote_fraction:.1%} inter-node "
        f"({format_bytes(store.stats.remote_bytes)} across the fabric)"
    )

    print("\ndata store, preloaded mode:")
    fs.stats.reset()
    store2 = DistributedDataStore(RANKS, bytes_per_rank=10**8, placement=placement)
    preloaded = StoreReader(
        fs, paths, SAMPLES_PER_BUNDLE, ids, rngs.generator("pre"), store2, "preload"
    )
    print(
        f"  preload opened {fs.stats.opens} files "
        f"({fs.stats.opens / len(paths):.0f} per bundle — one each)"
    )
    epoch_stats(fs, preloaded, "preload")

    print("\nmini-batch exchange over real SPMD messages (4 rank threads):")
    shard_of = [
        {int(s): {"tag": np.array([s], dtype=np.float32)} for s in range(SAMPLES) if s % RANKS == r}
        for r in range(RANKS)
    ]
    owner = {s: s % RANKS for s in range(SAMPLES)}
    batch = rngs.generator("batch").choice(SAMPLES, size=BATCH, replace=False)

    def rank_program(comm):
        return spmd_exchange_minibatch(comm, shard_of[comm.rank], owner, batch)

    per_rank = run_spmd(RANKS, rank_program, timeout=30)
    reassembled = [int(s["tag"][0]) for chunk in per_rank for s in chunk]
    assert reassembled == batch.tolist()
    print(
        f"  batch of {BATCH} reassembled in order across {RANKS} ranks "
        f"({[len(chunk) for chunk in per_rank]} samples per consumer rank)"
    )


if __name__ == "__main__":
    main()
