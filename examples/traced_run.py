#!/usr/bin/env python
"""Traced run: a tiny LTFB training with the full observability stack on.

Demonstrates (and gives CI a deterministic workload for) the telemetry
span/metrics/health pipeline:

1. run a small 4-trainer LTFB population on the ``process`` backend with
   prefetch enabled, so trainer steps and prefetch fills land on separate
   timeline tracks;
2. write a span-enabled JSONL trace (``JsonlTraceWriter(spans=True)``),
   an accumulated metrics registry (Prometheus text), and run-health
   warnings into the ``History``;
3. print where everything landed, ready for::

       python -m repro.experiments trace-report  <out>/trace.jsonl
       python -m repro.experiments trace-export  <out>/trace.jsonl

   The exported JSON loads in Perfetto (https://ui.perfetto.dev) or
   chrome://tracing.

Run:  python examples/traced_run.py [output-dir]   (default: traced-run/)
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.core import (
    EnsembleSpec,
    LtfbConfig,
    LtfbDriver,
    TrainerConfig,
    build_population,
    pretrain_autoencoder,
)
from repro.exec import resolve_backend
from repro.jag import JagDatasetConfig, generate_dataset, small_schema
from repro.models import small_config
from repro.telemetry import (
    HealthMonitor,
    JsonlTraceWriter,
    MetricsCollector,
    ProgressLogger,
    ResourceSampler,
    write_metrics,
)
from repro.utils.rng import RngFactory


def main(out_dir: str = "traced-run") -> None:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    rngs = RngFactory(seed=7)

    print("generating synthetic JAG dataset ...")
    dataset = generate_dataset(
        JagDatasetConfig(n_samples=512, schema=small_schema(8), seed=7)
    )
    train_ids, val_ids = dataset.train_val_split(0.15, mode="strided")
    val_batch = {k: v[val_ids] for k, v in dataset.fields.items()}

    spec = EnsembleSpec(
        k=4,
        surrogate=small_config(dataset.schema, batch_size=32),
        trainer=TrainerConfig(batch_size=32),
        ae_epochs=2,
        ae_max_samples=256,
        hyperparam_jitter=0.25,
    )
    print("pre-training the multimodal autoencoder ...")
    autoencoder = pretrain_autoencoder(dataset, train_ids, rngs, spec)
    trainers = build_population(dataset, train_ids, rngs, spec, autoencoder)

    # Process backend + prefetch: trainer steps and the prefetch fills
    # that overlap them land on distinct tracks in the exported trace.
    driver = LtfbDriver(
        trainers,
        np.random.default_rng(7),
        LtfbConfig(steps_per_round=6, rounds=3),
        eval_batch=val_batch,
        backend=resolve_backend("process", max_workers=2, prefetch_depth=2),
    )

    trace_path = out / "trace.jsonl"
    metrics = MetricsCollector()
    health = HealthMonitor()
    print("training (process backend, 2 workers, prefetch depth 2) ...")
    with JsonlTraceWriter(
        trace_path, metadata={"example": "traced_run"}, spans=True
    ) as tracer:
        history = driver.run(
            callbacks=[
                tracer, metrics, health, ProgressLogger(), ResourceSampler(),
            ]
        )

    metrics_path = out / "metrics.prom"
    write_metrics(metrics.registry, metrics_path)

    print(f"run healthy: {history.healthy}")
    for w in history.health_warnings:
        print(f"  {w.render()}")
    print(f"trace written:   {trace_path} ({tracer.events_written} events)")
    print(f"metrics written: {metrics_path}")
    print("next steps:")
    print(f"  python -m repro.experiments trace-report {trace_path}")
    print(f"  python -m repro.experiments trace-export {trace_path}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
