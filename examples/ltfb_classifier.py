#!/usr/bin/env python
"""Classic LTFB on a classification task (the paper's prior work).

The LTFB algorithm predates its GAN extension: Jacobs et al. (MLHPC'17)
demonstrated it on image classification with *full-model* exchange.  This
example reproduces that setting with the library's generic pieces — no
CycleGAN involved — to show the tournament machinery is model-agnostic:

- a synthetic "shard-biased" classification problem (each trainer's silo
  over-represents some classes, the classification analog of the paper's
  non-IID data silos);
- plain tensorlib MLP classifiers with softmax cross-entropy;
- a hand-rolled tournament loop: random pairing, full-model exchange,
  winner judged by held-out accuracy.

Run:  python examples/ltfb_classifier.py
"""

from __future__ import annotations

import numpy as np

from repro.tensorlib import Adam, losses, mlp
from repro.tensorlib.metrics import Accuracy
from repro.utils.rng import RngFactory

NUM_CLASSES = 6
INPUT_DIM = 20
K_TRAINERS = 4
ROUNDS, STEPS, BATCH = 12, 15, 64


def make_problem(rng: np.random.Generator, n: int = 6000):
    """Gaussian class clusters with overlapping covariance."""
    centers = rng.normal(scale=2.0, size=(NUM_CLASSES, INPUT_DIM))
    labels = rng.integers(0, NUM_CLASSES, size=n)
    x = centers[labels] + rng.normal(scale=1.6, size=(n, INPUT_DIM))
    return x.astype(np.float32), labels


def biased_silos(x, y, k, rng):
    """Give each trainer a class-skewed silo (non-IID shards)."""
    silos = [[] for _ in range(k)]
    for idx, label in enumerate(y):
        # Each class mostly lands on one silo, with 25% leakage.
        home = label % k
        dest = home if rng.random() > 0.25 else rng.integers(0, k)
        silos[int(dest)].append(idx)
    return [np.array(s) for s in silos]


def accuracy(model, x, y) -> float:
    metric = Accuracy()
    metric.update(model.predict({"in": x}, "out"), y)
    return metric.result()


def main() -> None:
    rngs = RngFactory(2017)  # the year of the original LTFB paper
    data_rng = rngs.generator("data")
    x, y = make_problem(data_rng)
    train_x, train_y = x[:4800], y[:4800]
    tourn_x, tourn_y = x[4800:5400], y[4800:5400]
    val_x, val_y = x[5400:], y[5400:]

    silos = biased_silos(train_x, train_y, K_TRAINERS, rngs.generator("silo"))
    # Same model NAME for everyone (so states are exchangeable), distinct
    # RNG scopes (so initializations differ).
    models = [
        mlp(
            "classifier",
            rngs.child(f"clf{i}"),
            input_dim=INPUT_DIM,
            hidden=[64, 48],
            output_dim=NUM_CLASSES,
            activation="relu",
        )
        for i in range(K_TRAINERS)
    ]
    optimizers = [Adam(1e-3) for _ in range(K_TRAINERS)]
    batch_rngs = [rngs.generator(f"batches{i}") for i in range(K_TRAINERS)]
    pairing_rng = rngs.generator("pairing")

    print(
        f"{K_TRAINERS} classifiers on class-skewed silos "
        f"(sizes {[len(s) for s in silos]}), full-model LTFB exchange"
    )
    for rnd in range(ROUNDS):
        # Independent training on each silo.
        for model, opt, silo, brng in zip(models, optimizers, silos, batch_rngs):
            for _ in range(STEPS):
                take = brng.choice(silo, size=min(BATCH, silo.size), replace=False)
                model.zero_grad()
                out = model.forward({"in": train_x[take]}, outputs=["out"])["out"]
                _, grad = losses.softmax_cross_entropy(out, train_y[take])
                model.backward({"out": grad})
                opt.step(model.trainable_weights)

        # Tournament: pair, exchange full models, keep the better one on
        # the shared held-out tournament set.
        perm = pairing_rng.permutation(K_TRAINERS)
        for a, b in zip(perm[::2], perm[1::2]):
            acc_a = accuracy(models[a], tourn_x, tourn_y)
            acc_b = accuracy(models[b], tourn_x, tourn_y)
            winner, loser = (a, b) if acc_a >= acc_b else (b, a)
            models[loser].set_state(models[winner].get_state())

        best = max(accuracy(m, val_x, val_y) for m in models)
        print(f"  round {rnd:2d}: best validation accuracy {best:.3f}")

    per_silo = [accuracy(m, val_x, val_y) for m in models]
    print(f"final population accuracies: {[round(a, 3) for a in per_silo]}")
    print(
        "note: without the tournament, each silo's class skew caps its "
        "model's accuracy; exchange spreads the best model across silos."
    )


if __name__ == "__main__":
    main()
