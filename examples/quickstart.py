#!/usr/bin/env python
"""Quickstart: train a small ICF surrogate with LTFB in a couple of minutes.

Walks the core public API end to end:

1. generate a synthetic JAG dataset (5-D inputs -> 15 scalars + 12 images);
2. pre-train the shared multimodal autoencoder (the 20-D latent space);
3. build a 4-trainer LTFB population over contiguous (non-IID) data silos;
4. run tournament training and inspect the winning surrogate.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    EnsembleSpec,
    LtfbConfig,
    LtfbDriver,
    TrainerConfig,
    build_population,
    pretrain_autoencoder,
)
from repro.jag import JagDatasetConfig, generate_dataset, small_schema
from repro.models import small_config
from repro.telemetry import JsonlTraceWriter, ProgressLogger, WallClockTimer
from repro.utils.rng import RngFactory


def main() -> None:
    rngs = RngFactory(seed=42)

    # 1. Data: 2,048 synthetic ICF simulations, 12x12 images for speed.
    print("generating synthetic JAG dataset ...")
    dataset = generate_dataset(
        JagDatasetConfig(n_samples=2048, schema=small_schema(12), seed=42)
    )
    train_ids, val_ids = dataset.train_val_split(0.15, mode="strided")
    val_batch = {k: v[val_ids] for k, v in dataset.fields.items()}

    # 2. Shared autoencoder, trained a priori (defines the latent space).
    spec = EnsembleSpec(
        k=4,
        surrogate=small_config(dataset.schema, batch_size=64),
        trainer=TrainerConfig(batch_size=64),
        ae_epochs=8,
        hyperparam_jitter=0.25,
    )
    print("pre-training the multimodal autoencoder ...")
    autoencoder = pretrain_autoencoder(dataset, train_ids, rngs, spec)
    recon = autoencoder.reconstruction_error(val_batch)
    print(
        f"  autoencoder reconstruction: scalars MAE {recon['scalar_mae']:.3f}, "
        f"images MAE {recon['image_mae']:.4f}"
    )

    # 3. Population of trainers over contiguous silos.
    trainers = build_population(dataset, train_ids, rngs, spec, autoencoder)
    for t in trainers:
        drive = dataset.params[t.reader.sample_ids, 0]
        print(
            f"  {t.name}: {t.reader.num_samples} samples, "
            f"laser drive in [{drive.min():.2f}, {drive.max():.2f}]"
        )

    # 4. Tournament training, observed through the telemetry subsystem:
    #    a progress line per round, per-phase wall-clock totals, and a
    #    JSONL trace you can inspect afterwards with
    #    `python -m repro.experiments trace-report quickstart_trace.jsonl`.
    print("running LTFB (8 rounds x 20 steps) ...")
    driver = LtfbDriver(
        trainers,
        rngs.generator("pairing"),
        LtfbConfig(steps_per_round=20, rounds=8),
        eval_batch=val_batch,
    )
    timer = WallClockTimer()
    history = driver.run(
        callbacks=[
            ProgressLogger(),
            timer,
            JsonlTraceWriter("quickstart_trace.jsonl"),
        ]
    )
    print(f"tournament adoption rate: {history.adoption_rate():.2f}")
    print(f"  {timer.summary()}")
    print("  telemetry trace written to quickstart_trace.jsonl")

    best, loss = driver.best_trainer()
    print(f"\nwinning trainer: {best.name} (val loss {loss:.3f})")

    # Use the surrogate: forward prediction and inversion on one sample.
    sample = {k: v[:1] for k, v in val_batch.items()}
    scalars_hat, images_hat = best.surrogate.predict_outputs(sample["params"])
    raw_truth = dataset.denormalize_scalars(sample["scalars"])
    raw_pred = dataset.denormalize_scalars(scalars_hat)
    print("\nforward prediction (first 5 scalars, physical units):")
    print(f"  truth:     {np.round(raw_truth[0, :5], 3)}")
    print(f"  predicted: {np.round(raw_pred[0, :5], 3)}")
    x_hat = best.surrogate.invert(sample["scalars"], sample["images"])
    print("inverse inference (5-D input parameters):")
    print(f"  truth:     {np.round(sample['params'][0], 3)}")
    print(f"  inferred:  {np.round(x_hat[0], 3)}")


if __name__ == "__main__":
    main()
