"""The live-observability acceptance demo: catch a run going bad, live.

A short streamed LTFB campaign runs with the full live plane attached —
:class:`~repro.telemetry.LiveAggregator` (windowed rollups + anomaly
alerts), :class:`~repro.telemetry.FlightRecorder` (post-mortem ring
bundles), and a JSONL trace.  Two faults are injected deliberately:

1. a **fetch-stall regression** — synthetic ``fetch_stall`` events flood
   round 2, far past the stall/train-phase threshold;
2. a **trainer NaN** — one generator's weights are poisoned after round
   2's exchange, so its losses go non-finite in round 3.

The demo then proves the acceptance contract:

- both alerts landed in ``History.health_warnings`` *during* the run
  (a probe callback snapshots the warning count at every round end);
- the flight recorder auto-dumped a bundle at the critical alert, and
  the bundle validates and holds the events around the fault;
- the ``python -m repro.telemetry watch`` rendering of the trace shows
  the alerts.

Run it::

    python examples/live_demo.py [out-dir]
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

from repro.core import LtfbConfig, LtfbDriver
from repro.exec import resolve_backend
from repro.experiments.streaming import StreamingSpec, build_streaming_run
from repro.telemetry import Callback, FlightRecorder, JsonlTraceWriter, LiveAggregator
from repro.telemetry.live import load_bundle


class StallInjector(Callback):
    """Floods one round with synthetic fetch stalls (a 'slow filesystem'
    regression): every step of ``target_round`` also reports a 2 s stall."""

    def __init__(self, target_round: int) -> None:
        self.target_round = target_round
        self.rounds_done = 0
        self._hub = None

    def on_run_begin(self, driver) -> None:
        self._hub = driver.telemetry

    def on_step_end(self, event) -> None:
        if self.rounds_done == self.target_round and self._hub is not None:
            self._hub.emit(
                "fetch_stall",
                trainer=event.payload.get("trainer"),
                stall_s=2.0,
                overlap_s=0.0,
                worker=event.payload.get("worker", 0),
            )

    def on_round_end(self, event) -> None:
        self.rounds_done = event.payload.get("round", self.rounds_done) + 1


class NaNSaboteur(Callback):
    """Poisons the first trainer's generator after ``target_round`` ends,
    so the next round's losses are non-finite."""

    def __init__(self, trainers, target_round: int) -> None:
        self.trainers = trainers
        self.target_round = target_round

    def on_round_end(self, event) -> None:
        if event.payload.get("round") == self.target_round:
            victim = self.trainers[0]
            state = victim.surrogate.get_generator_state()
            victim.surrogate.set_generator_state(
                {k: v * math.nan for k, v in state.items()}
            )


class WarningProbe(Callback):
    """Snapshots ``History.health_warnings`` growth per round — the proof
    that alerts arrive *during* the run, not at ``on_run_end``."""

    def __init__(self) -> None:
        self.per_round: list[int] = []
        self._history = None

    def on_run_begin(self, driver) -> None:
        self._history = driver.history

    def on_round_end(self, event) -> None:
        self.per_round.append(len(self._history.health_warnings))


def main(out_dir: str = "live-demo") -> int:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "trace.jsonl"
    rec_dir = out / "flightrec"

    setup = build_streaming_run(
        StreamingSpec(seed=7, k=2, n_design=256, prime_samples=64)
    )
    aggregator = LiveAggregator(
        # Sensitive thresholds so the injected faults trip deterministically
        # at demo scale (2 steps/round): any stall above 5% of the train
        # phase is a regression, no warmup grace.
        stall_fraction_threshold=0.05,
        warmup_rounds=1,
    )
    recorder = FlightRecorder(out_dir=rec_dir, capacity=64)
    stall_round, nan_round = 2, 2  # stall floods round 2; NaN lands round 3
    probe = WarningProbe()

    driver = LtfbDriver(
        setup.trainers,
        setup.rngs.generator("pairing"),
        LtfbConfig(steps_per_round=2, rounds=4),
        eval_batch=setup.eval_batch,
        backend=resolve_backend("serial"),
        source=setup.source,
    )
    history = driver.run(
        callbacks=[
            JsonlTraceWriter(trace_path),
            aggregator,
            recorder,
            StallInjector(stall_round),
            NaNSaboteur(setup.trainers, nan_round),
            probe,
        ]
    )

    # -- acceptance: alerts visible in History DURING the run ---------------
    kinds = {w.kind for w in history.health_warnings}
    assert "stall_regression" in kinds, kinds
    assert "nan_loss" in kinds, kinds
    nan_warnings = [w for w in history.health_warnings if w.kind == "nan_loss"]
    assert all(w.severity == "critical" for w in nan_warnings)
    # The probe saw warnings before the final round ended: the stall alert
    # fired at round 2's end, one round before the run finished.
    assert probe.per_round[stall_round] >= 1, probe.per_round
    assert probe.per_round[-1] > probe.per_round[stall_round - 1], probe.per_round

    # -- acceptance: flight-recorder bundle around the fault ----------------
    assert recorder.dumps_written, "critical alert should have auto-dumped"
    bundle = load_bundle(recorder.dumps_written[0])
    assert bundle["reason"].startswith("critical-"), bundle["reason"]
    alerts = [
        r for r in bundle["events"].get("health", [])
        if r["type"] == "alert"
    ]
    assert alerts, "bundle must hold the alert events around the fault"
    assert bundle["events"].get("train"), "bundle must hold recent steps"

    # -- the watch CLI rendering of the same trace --------------------------
    from repro.telemetry.__main__ import render_watch, watch_snapshot

    snap = watch_snapshot(trace_path)
    rendering = render_watch(snap, path=trace_path)
    assert "nan_loss" in rendering
    print(rendering)
    print()

    report = {
        "rounds_completed": history.rounds_completed,
        "healthy": history.healthy,
        "warnings": [w.render() for w in history.health_warnings],
        "warnings_per_round": probe.per_round,
        "alert_snapshot": snap["alerts"],
        "bundles": [str(p) for p in recorder.dumps_written],
        "bundle_reason": bundle["reason"],
        "bundle_subsystems": {
            k: len(v) for k, v in bundle["events"].items()
        },
    }
    (out / "report.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"ok: {history.rounds_completed} rounds, "
        f"{len(history.health_warnings)} live warnings "
        f"(first at round {next(i for i, n in enumerate(probe.per_round) if n)}), "
        f"bundle {recorder.dumps_written[0].name} validated"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
